// Kernel conformance suite: the tiled kernels must agree with the
// reference (naive-loop) kernels on randomized shapes — including ragged
// sizes that are not multiples of the register/cache tiles, zero-sized
// edges, and lda > m strided sub-panels — up to floating-point
// reassociation (tolerance-based comparison).  Sentinel padding around
// every output panel catches out-of-bounds writes, and regions the
// kernel contract says are never touched (strict upper triangles) are
// compared exactly.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "dense/kernels.hpp"
#include "dense/matrix.hpp"

namespace sparts::dense {
namespace {

constexpr real_t kSentinel = 777.25;

/// Restores the process-wide kernel implementation on scope exit.
class ImplGuard {
 public:
  ImplGuard() : saved_(kernel_impl()) {}
  ~ImplGuard() { set_kernel_impl(saved_); }

 private:
  KernelImpl saved_;
};

/// A column-major panel embedded in a sentinel-filled buffer with leading
/// dimension ld >= rows, so strided access and out-of-bounds writes are
/// both exercised.
struct Panel {
  index_t rows = 0;
  index_t cols = 0;
  index_t ld = 0;
  std::vector<real_t> buf;

  Panel(index_t rows_in, index_t cols_in, index_t pad)
      : rows(rows_in), cols(cols_in), ld(rows_in + pad),
        buf(static_cast<std::size_t>(ld * cols_in + pad), kSentinel) {}

  real_t* data() { return buf.data(); }
  const real_t* data() const { return buf.data(); }
  real_t& at(index_t i, index_t j) {
    return buf[static_cast<std::size_t>(i + j * ld)];
  }
  real_t at(index_t i, index_t j) const {
    return buf[static_cast<std::size_t>(i + j * ld)];
  }

  void fill_random(Rng& rng) {
    for (index_t j = 0; j < cols; ++j) {
      for (index_t i = 0; i < rows; ++i) at(i, j) = rng.uniform(-1.0, 1.0);
    }
  }

  /// Every entry outside the rows x cols panel must still hold the
  /// sentinel (no kernel may write into the padding).
  void expect_padding_intact(const char* what) const {
    for (index_t j = 0; j < cols; ++j) {
      for (index_t i = rows; i < ld; ++i) {
        ASSERT_EQ(at(i, j), kSentinel) << what << ": padding clobbered at ("
                                       << i << ", " << j << ")";
      }
    }
    for (std::size_t q = static_cast<std::size_t>(ld * cols); q < buf.size();
         ++q) {
      ASSERT_EQ(buf[q], kSentinel) << what << ": tail padding clobbered";
    }
  }
};

/// abs tolerance for comparing two summation orders of ~k products of
/// O(1) values.
real_t tol(index_t k) {
  return 1e-12 * static_cast<real_t>(std::max<index_t>(k, 1) + 16);
}

void expect_panels_close(const Panel& a, const Panel& b, index_t k,
                         const char* what) {
  ASSERT_EQ(a.rows, b.rows);
  ASSERT_EQ(a.cols, b.cols);
  for (index_t j = 0; j < a.cols; ++j) {
    for (index_t i = 0; i < a.rows; ++i) {
      ASSERT_NEAR(a.at(i, j), b.at(i, j), tol(k))
          << what << " mismatch at (" << i << ", " << j << ")";
    }
  }
}

/// Well-conditioned dense lower-triangular t x t factor: unit-scale
/// diagonal, small off-diagonal entries.  Entries above the diagonal are
/// filled with random values to verify the kernels never read them as
/// part of the triangle (they are part of the panel for padding checks).
void fill_lower_factor(Panel& l, Rng& rng) {
  const index_t t = l.cols;
  for (index_t j = 0; j < t; ++j) {
    for (index_t i = 0; i < l.rows; ++i) {
      if (i == j) {
        l.at(i, j) = 2.0 + rng.uniform(0.0, 1.0);
      } else if (i > j) {
        l.at(i, j) = rng.uniform(-1.0, 1.0) / static_cast<real_t>(t + 1);
      } else {
        l.at(i, j) = rng.uniform(-1.0, 1.0);
      }
    }
  }
}

struct GemmShape {
  index_t m, n, k;
};

// Ragged shapes straddling the microkernel (8x4) and cache-block
// boundaries, plus degenerate edges.
const GemmShape kGemmShapes[] = {
    {1, 1, 1},    {3, 2, 5},     {8, 4, 8},    {7, 5, 6},    {9, 31, 17},
    {16, 8, 16},  {33, 7, 129},  {64, 64, 64}, {65, 63, 130}, {100, 1, 57},
    {128, 2, 77}, {40, 3, 256},  {57, 4, 123}, {130, 129, 1}, {5, 260, 9},
    {257, 6, 40}, {12, 30, 300}, {0, 4, 5},    {6, 0, 5},    {6, 4, 0},
};

TEST(KernelConformance, PanelGemm) {
  Rng rng(101);
  for (const auto& s : kGemmShapes) {
    for (index_t pad : {index_t{0}, index_t{3}}) {
      Panel a(s.m, s.k, pad);
      Panel b(s.k, s.n, pad);
      a.fill_random(rng);
      b.fill_random(rng);
      Panel c_ref(s.m, s.n, pad);
      Panel c_tiled(s.m, s.n, pad);
      c_ref.fill_random(rng);
      for (index_t j = 0; j < s.n; ++j) {
        for (index_t i = 0; i < s.m; ++i) c_tiled.at(i, j) = c_ref.at(i, j);
      }
      ImplGuard guard;
      set_kernel_impl(KernelImpl::reference);
      panel_gemm(s.m, s.n, s.k, -0.5, a.data(), a.ld, b.data(), b.ld,
                 c_ref.data(), c_ref.ld);
      set_kernel_impl(KernelImpl::tiled);
      panel_gemm(s.m, s.n, s.k, -0.5, a.data(), a.ld, b.data(), b.ld,
                 c_tiled.data(), c_tiled.ld);
      expect_panels_close(c_ref, c_tiled, s.k, "panel_gemm");
      c_tiled.expect_padding_intact("panel_gemm");
    }
  }
}

TEST(KernelConformance, PanelGemmAt) {
  Rng rng(102);
  for (const auto& s : kGemmShapes) {
    for (index_t pad : {index_t{0}, index_t{2}}) {
      Panel a(s.k, s.m, pad);  // stored k x m, used as A^T
      Panel b(s.k, s.n, pad);
      a.fill_random(rng);
      b.fill_random(rng);
      Panel c_ref(s.m, s.n, pad);
      Panel c_tiled(s.m, s.n, pad);
      c_ref.fill_random(rng);
      for (index_t j = 0; j < s.n; ++j) {
        for (index_t i = 0; i < s.m; ++i) c_tiled.at(i, j) = c_ref.at(i, j);
      }
      ImplGuard guard;
      set_kernel_impl(KernelImpl::reference);
      panel_gemm_at(s.m, s.n, s.k, 1.25, a.data(), a.ld, b.data(), b.ld,
                    c_ref.data(), c_ref.ld);
      set_kernel_impl(KernelImpl::tiled);
      panel_gemm_at(s.m, s.n, s.k, 1.25, a.data(), a.ld, b.data(), b.ld,
                    c_tiled.data(), c_tiled.ld);
      expect_panels_close(c_ref, c_tiled, s.k, "panel_gemm_at");
      c_tiled.expect_padding_intact("panel_gemm_at");
    }
  }
}

TEST(KernelConformance, PanelSyrk) {
  Rng rng(103);
  const GemmShape shapes[] = {
      {5, 5, 3},   {8, 8, 8},    {17, 17, 30}, {70, 70, 65}, {130, 126, 40},
      {65, 70, 9}, {129, 65, 8}, {3, 90, 11},  {0, 5, 3},    {5, 5, 0},
  };
  for (const auto& s : shapes) {
    for (bool lower_only : {false, true}) {
      for (index_t pad : {index_t{0}, index_t{5}}) {
        Panel a(s.m, s.k, pad);
        Panel a2(s.n, s.k, pad);
        a.fill_random(rng);
        a2.fill_random(rng);
        Panel c_ref(s.m, s.n, pad);
        Panel c_tiled(s.m, s.n, pad);
        c_ref.fill_random(rng);
        for (index_t j = 0; j < s.n; ++j) {
          for (index_t i = 0; i < s.m; ++i) c_tiled.at(i, j) = c_ref.at(i, j);
        }
        Panel c_before = c_ref;
        ImplGuard guard;
        set_kernel_impl(KernelImpl::reference);
        panel_syrk(s.m, s.n, s.k, a.data(), a.ld, a2.data(), a2.ld,
                   c_ref.data(), c_ref.ld, lower_only);
        set_kernel_impl(KernelImpl::tiled);
        panel_syrk(s.m, s.n, s.k, a.data(), a.ld, a2.data(), a2.ld,
                   c_tiled.data(), c_tiled.ld, lower_only);
        expect_panels_close(c_ref, c_tiled, s.k, "panel_syrk");
        c_tiled.expect_padding_intact("panel_syrk");
        if (lower_only) {
          // Entries strictly above the diagonal must be bit-untouched.
          for (index_t j = 0; j < s.n; ++j) {
            for (index_t i = 0; i < std::min(j, s.m); ++i) {
              ASSERT_EQ(c_tiled.at(i, j), c_before.at(i, j))
                  << "panel_syrk(lower_only) touched (" << i << ", " << j
                  << ")";
            }
          }
        }
      }
    }
  }
}

TEST(KernelConformance, PanelTrsmLowerBothDirections) {
  Rng rng(104);
  const index_t ts[] = {1, 2, 5, 8, 63, 64, 65, 130, 200};
  const index_t ns[] = {1, 2, 3, 4, 7, 30};
  for (index_t t : ts) {
    for (index_t n : ns) {
      for (index_t pad : {index_t{0}, index_t{4}}) {
        Panel l(t, t, pad);
        fill_lower_factor(l, rng);
        Panel b_ref(t, n, pad);
        b_ref.fill_random(rng);
        Panel b_tiled = b_ref;
        ImplGuard guard;
        for (bool transposed : {false, true}) {
          set_kernel_impl(KernelImpl::reference);
          const nnz_t f_ref =
              transposed ? panel_trsm_lower_transposed(t, n, l.data(), l.ld,
                                                       b_ref.data(), b_ref.ld)
                         : panel_trsm_lower(t, n, l.data(), l.ld, b_ref.data(),
                                            b_ref.ld);
          set_kernel_impl(KernelImpl::tiled);
          const nnz_t f_tiled =
              transposed
                  ? panel_trsm_lower_transposed(t, n, l.data(), l.ld,
                                                b_tiled.data(), b_tiled.ld)
                  : panel_trsm_lower(t, n, l.data(), l.ld, b_tiled.data(),
                                     b_tiled.ld);
          EXPECT_EQ(f_ref, f_tiled);
          EXPECT_EQ(f_ref, trsm_panel_flops(t, n));
          expect_panels_close(b_ref, b_tiled, t, "panel_trsm_lower");
          b_tiled.expect_padding_intact("panel_trsm_lower");
        }
      }
    }
  }
}

TEST(KernelConformance, PanelTrsmRightLt) {
  Rng rng(105);
  const index_t ms[] = {1, 7, 33, 64, 150};
  const index_t ks[] = {1, 4, 8, 63, 64, 65, 129};
  for (index_t m : ms) {
    for (index_t k : ks) {
      for (index_t pad : {index_t{0}, index_t{3}}) {
        Panel l(k, k, pad);
        fill_lower_factor(l, rng);
        Panel x_ref(m, k, pad);
        x_ref.fill_random(rng);
        Panel x_tiled = x_ref;
        ImplGuard guard;
        set_kernel_impl(KernelImpl::reference);
        const nnz_t f_ref =
            panel_trsm_right_lt(m, k, l.data(), l.ld, x_ref.data(), x_ref.ld);
        set_kernel_impl(KernelImpl::tiled);
        const nnz_t f_tiled = panel_trsm_right_lt(m, k, l.data(), l.ld,
                                                  x_tiled.data(), x_tiled.ld);
        EXPECT_EQ(f_ref, f_tiled);
        EXPECT_EQ(f_ref, trsm_right_lt_flops(m, k));
        expect_panels_close(x_ref, x_tiled, k, "panel_trsm_right_lt");
        x_tiled.expect_padding_intact("panel_trsm_right_lt");
      }
    }
  }
}

TEST(KernelConformance, PanelCholesky) {
  Rng rng(106);
  struct Shape {
    index_t m, t;
  };
  const Shape shapes[] = {{1, 1},   {4, 2},    {8, 8},     {40, 40},
                          {65, 64}, {70, 30},  {129, 129}, {150, 70},
                          {200, 3}, {90, 0}};
  for (const auto& s : shapes) {
    for (index_t pad : {index_t{0}, index_t{6}}) {
      // SPD m x m matrix; the kernel factors its first t columns.
      Matrix base(s.m, s.m);
      for (index_t j = 0; j < s.m; ++j) {
        for (index_t i = 0; i < s.m; ++i) base(i, j) = rng.uniform(-1.0, 1.0);
      }
      Matrix spd(s.m, s.m);
      {
        ImplGuard guard;
        set_kernel_impl(KernelImpl::reference);
        gemm(1.0, base, false, base, true, spd);  // B B^T
      }
      for (index_t i = 0; i < s.m; ++i) {
        spd(i, i) += static_cast<real_t>(s.m);
      }
      Panel p_ref(s.m, std::max<index_t>(s.t, 1), pad);
      for (index_t j = 0; j < s.t; ++j) {
        for (index_t i = 0; i < s.m; ++i) p_ref.at(i, j) = spd(i, j);
      }
      Panel p_tiled = p_ref;
      ImplGuard guard;
      set_kernel_impl(KernelImpl::reference);
      const nnz_t f_ref =
          panel_cholesky(s.m, s.t, p_ref.data(), p_ref.ld);
      set_kernel_impl(KernelImpl::tiled);
      const nnz_t f_tiled =
          panel_cholesky(s.m, s.t, p_tiled.data(), p_tiled.ld);
      EXPECT_EQ(f_ref, f_tiled);
      EXPECT_EQ(f_ref, cholesky_panel_flops(s.m, s.t));
      // Only the lower trapezoid is defined output; entries strictly
      // above the diagonal must be bit-untouched by both impls.
      for (index_t j = 0; j < s.t; ++j) {
        for (index_t i = j; i < s.m; ++i) {
          ASSERT_NEAR(p_ref.at(i, j), p_tiled.at(i, j), tol(s.m))
              << "panel_cholesky mismatch at (" << i << ", " << j << ")";
        }
        for (index_t i = 0; i < j; ++i) {
          ASSERT_EQ(p_ref.at(i, j), spd(i, j));
          ASSERT_EQ(p_tiled.at(i, j), spd(i, j));
        }
      }
      p_tiled.expect_padding_intact("panel_cholesky");
    }
  }
}

TEST(KernelConformance, PanelCholeskyNonPositivePivotReportsGlobalColumn) {
  // A pivot failure inside a later tile of the blocked algorithm must
  // report the panel-global column, like the reference kernel.
  const index_t t = 70;  // two 64-wide tiles in the tiled implementation
  Matrix spd(t, t);
  Rng rng(107);
  Matrix base(t, t);
  for (index_t j = 0; j < t; ++j) {
    for (index_t i = 0; i < t; ++i) base(i, j) = rng.uniform(-1.0, 1.0);
  }
  gemm(1.0, base, false, base, true, spd);
  for (index_t i = 0; i < t; ++i) spd(i, i) += static_cast<real_t>(t);
  spd(68, 68) = -1e6;  // forces a non-positive pivot in the second tile
  for (KernelImpl impl : {KernelImpl::reference, KernelImpl::tiled}) {
    ImplGuard guard;
    set_kernel_impl(impl);
    Matrix work = spd;
    try {
      panel_cholesky(t, t, work.col(0), t);
      FAIL() << "expected NumericalError";
    } catch (const NumericalError& e) {
      EXPECT_NE(std::string(e.what()).find("column 68"), std::string::npos)
          << kernel_impl_name(impl) << " reported: " << e.what();
    }
  }
}

TEST(KernelConformance, MatrixGemmAllTransposeCombinations) {
  Rng rng(108);
  const GemmShape shapes[] = {{7, 5, 6}, {33, 17, 65}, {64, 64, 64},
                              {1, 9, 130}};
  for (const auto& s : shapes) {
    for (bool ta : {false, true}) {
      for (bool tb : {false, true}) {
        Matrix a = ta ? Matrix(s.k, s.m) : Matrix(s.m, s.k);
        Matrix b = tb ? Matrix(s.n, s.k) : Matrix(s.k, s.n);
        for (index_t j = 0; j < a.cols(); ++j) {
          for (index_t i = 0; i < a.rows(); ++i) {
            a(i, j) = rng.uniform(-1.0, 1.0);
          }
        }
        for (index_t j = 0; j < b.cols(); ++j) {
          for (index_t i = 0; i < b.rows(); ++i) {
            b(i, j) = rng.uniform(-1.0, 1.0);
          }
        }
        Matrix c_ref(s.m, s.n);
        Matrix c_tiled(s.m, s.n);
        ImplGuard guard;
        set_kernel_impl(KernelImpl::reference);
        gemm(-2.0, a, ta, b, tb, c_ref);
        set_kernel_impl(KernelImpl::tiled);
        gemm(-2.0, a, ta, b, tb, c_tiled);
        for (index_t j = 0; j < s.n; ++j) {
          for (index_t i = 0; i < s.m; ++i) {
            ASSERT_NEAR(c_ref(i, j), c_tiled(i, j), tol(s.k))
                << "gemm(ta=" << ta << ", tb=" << tb << ") at (" << i << ", "
                << j << ")";
          }
        }
      }
    }
  }
}

TEST(KernelConformance, Gemv) {
  Rng rng(109);
  for (index_t m : {index_t{1}, index_t{9}, index_t{64}, index_t{130}}) {
    for (index_t n : {index_t{1}, index_t{3}, index_t{4}, index_t{65}}) {
      Matrix a(m, n);
      for (index_t j = 0; j < n; ++j) {
        for (index_t i = 0; i < m; ++i) a(i, j) = rng.uniform(-1.0, 1.0);
      }
      std::vector<real_t> x(static_cast<std::size_t>(n));
      for (auto& v : x) v = rng.uniform(-1.0, 1.0);
      std::vector<real_t> y_ref(static_cast<std::size_t>(m), 0.5);
      std::vector<real_t> y_tiled = y_ref;
      ImplGuard guard;
      set_kernel_impl(KernelImpl::reference);
      gemv(1.5, a, x, y_ref);
      set_kernel_impl(KernelImpl::tiled);
      gemv(1.5, a, x, y_tiled);
      for (index_t i = 0; i < m; ++i) {
        ASSERT_NEAR(y_ref[static_cast<std::size_t>(i)],
                    y_tiled[static_cast<std::size_t>(i)], tol(n));
      }
    }
  }
}

TEST(KernelConformance, NanPropagatesThroughGemm) {
  // The old kernels skipped zero B entries and with them NaN/Inf columns
  // of A; both implementations must propagate non-finite values now.
  const index_t n = 6;
  Panel a(n, n, 0);
  Panel b(n, n, 0);
  Rng rng(110);
  a.fill_random(rng);
  b.fill_random(rng);
  a.at(2, 3) = std::nan("");
  b.at(3, 1) = 0.0;  // multiplies the NaN column of A
  for (KernelImpl impl : {KernelImpl::reference, KernelImpl::tiled}) {
    ImplGuard guard;
    set_kernel_impl(impl);
    Panel c(n, n, 0);
    c.fill_random(rng);
    panel_gemm(n, n, n, 1.0, a.data(), a.ld, b.data(), b.ld, c.data(), c.ld);
    EXPECT_TRUE(std::isnan(c.at(2, 1)))
        << kernel_impl_name(impl) << " swallowed NaN * 0";
  }
}

TEST(KernelConformance, EnvSelection) {
  EXPECT_STREQ(kernel_impl_name(KernelImpl::reference), "reference");
  EXPECT_STREQ(kernel_impl_name(KernelImpl::tiled), "tiled");
  ImplGuard guard;
  set_kernel_impl(KernelImpl::reference);
  EXPECT_EQ(kernel_impl(), KernelImpl::reference);
  set_kernel_impl(KernelImpl::tiled);
  EXPECT_EQ(kernel_impl(), KernelImpl::tiled);
}

}  // namespace
}  // namespace sparts::dense
