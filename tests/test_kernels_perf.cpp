// Cheap perf smoke test: the tiled panel_gemm must not be slower than
// the reference kernel at n = 256 in an optimized build.  This is a
// regression tripwire for the kernel dispatch layer (the full GFLOP/s
// trajectory lives in bench_kernels / BENCH_kernels.json); it is skipped
// in unoptimized and sanitizer builds, where relative kernel timings are
// meaningless.
#include <gtest/gtest.h>

#include <chrono>
#include <vector>

#include "common/rng.hpp"
#include "dense/kernels.hpp"

namespace sparts::dense {
namespace {

double best_seconds(KernelImpl impl, index_t n, std::vector<real_t>& a,
                    std::vector<real_t>& b, std::vector<real_t>& c,
                    int reps) {
  const KernelImpl saved = kernel_impl();
  set_kernel_impl(impl);
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    panel_gemm(n, n, n, 1.0, a.data(), n, b.data(), n, c.data(), n);
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  set_kernel_impl(saved);
  return best;
}

TEST(KernelPerfSmoke, TiledPanelGemmNotSlowerThanReference) {
#ifndef NDEBUG
  GTEST_SKIP() << "unoptimized build: kernel timings are meaningless";
#endif
#ifdef SPARTS_SANITIZE_BUILD
  GTEST_SKIP() << "sanitizer build: kernel timings are meaningless";
#else
  const index_t n = 256;
  Rng rng(42);
  std::vector<real_t> a(static_cast<std::size_t>(n * n));
  std::vector<real_t> b(static_cast<std::size_t>(n * n));
  std::vector<real_t> c(static_cast<std::size_t>(n * n), 0.0);
  for (auto& v : a) v = rng.uniform(-1.0, 1.0);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  // Warm up both paths (page faults, pack-workspace allocation).
  best_seconds(KernelImpl::reference, n, a, b, c, 1);
  best_seconds(KernelImpl::tiled, n, a, b, c, 1);
  const double t_ref = best_seconds(KernelImpl::reference, n, a, b, c, 5);
  const double t_tiled = best_seconds(KernelImpl::tiled, n, a, b, c, 5);
  const double gf = 2.0 * n * n * n * 1e-9;
  RecordProperty("reference_gflops", std::to_string(gf / t_ref));
  RecordProperty("tiled_gflops", std::to_string(gf / t_tiled));
  // 5% slack so scheduler noise cannot flake the test; the expected
  // margin is >= 3x (see ISSUE 2 acceptance criteria).
  EXPECT_LE(t_tiled, t_ref * 1.05)
      << "tiled panel_gemm slower than reference: tiled " << gf / t_tiled
      << " GFLOP/s vs reference " << gf / t_ref << " GFLOP/s";
#endif
}

}  // namespace
}  // namespace sparts::dense
