// Distributed-layout arithmetic, RHS packet round-trips, and the
// load-balance diagnostics.
#include <gtest/gtest.h>

#include <numeric>

#include "mapping/load_balance.hpp"
#include "mapping/subtree_to_subcube.hpp"
#include "ordering/nested_dissection.hpp"
#include "partrisolve/layout.hpp"
#include "partrisolve/packets.hpp"
#include "sparse/generators.hpp"
#include "sparse/permutation.hpp"
#include "symbolic/supernodes.hpp"
#include "symbolic/symbolic.hpp"

namespace sparts {
namespace {

TEST(Layout, CoversEveryPositionExactlyOnce) {
  for (index_t q : {1, 2, 3, 4}) {
    for (index_t b : {1, 3, 8}) {
      for (index_t ns : {1, 7, 24, 25}) {
        partrisolve::Layout lay{q, b, ns, std::min<index_t>(ns, 10)};
        std::vector<index_t> seen(static_cast<std::size_t>(ns), 0);
        index_t total = 0;
        for (index_t r = 0; r < q; ++r) {
          total += lay.local_count(r);
          for (index_t i = 0; i < ns; ++i) {
            if (lay.owner_of(i) == r) {
              ++seen[static_cast<std::size_t>(i)];
              EXPECT_LT(lay.local_of(i), lay.local_count(r));
            }
          }
        }
        EXPECT_EQ(total, ns) << "q=" << q << " b=" << b << " ns=" << ns;
        for (index_t i = 0; i < ns; ++i) {
          EXPECT_EQ(seen[static_cast<std::size_t>(i)], 1);
        }
      }
    }
  }
}

TEST(Layout, LocalOffsetsAreAscendingAndPacked) {
  partrisolve::Layout lay{3, 4, 29, 12};
  for (index_t r = 0; r < 3; ++r) {
    index_t expected = 0;
    for (index_t i = 0; i < 29; ++i) {
      if (lay.owner_of(i) != r) continue;
      EXPECT_EQ(lay.local_of(i), expected) << "rank " << r << " pos " << i;
      ++expected;
    }
  }
}

TEST(Layout, PivotBlockBoundaries) {
  partrisolve::Layout lay{2, 8, 40, 20};
  EXPECT_EQ(lay.num_blocks(), 5);
  EXPECT_EQ(lay.num_pivot_blocks(), 3);  // ceil(20/8)
  EXPECT_EQ(lay.col_begin(2), 16);
  EXPECT_EQ(lay.col_end(2), 20);  // clipped at t
  EXPECT_EQ(lay.block_end(4), 40);
}

TEST(Packets, RoundTrip) {
  partrisolve::RhsPacket p;
  p.positions = {3, 17, 42};
  const index_t m = 2;
  p.values = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  auto bytes = partrisolve::pack_rhs(p, m);
  auto q = partrisolve::unpack_rhs(bytes, m);
  EXPECT_EQ(q.positions, p.positions);
  EXPECT_EQ(q.values, p.values);
}

TEST(Packets, EmptyPacket) {
  partrisolve::RhsPacket p;
  auto bytes = partrisolve::pack_rhs(p, 5);
  auto q = partrisolve::unpack_rhs(bytes, 5);
  EXPECT_TRUE(q.empty());
}

TEST(Packets, RejectsCorruptStream) {
  partrisolve::RhsPacket p;
  p.positions = {1};
  p.values = {9.0};
  auto bytes = partrisolve::pack_rhs(p, 1);
  bytes.pop_back();
  EXPECT_THROW(partrisolve::unpack_rhs(bytes, 1), Error);
}

class LoadBalanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sparse::SymmetricCsc a = sparse::permute_symmetric(
        sparse::grid2d(31, 31), ordering::nested_dissection_grid2d(31, 31));
    sym_ = symbolic::symbolic_cholesky(a);
    part_ = symbolic::fundamental_supernodes(sym_);
    weights_ = mapping::solve_work_weights(part_);
  }
  symbolic::SymbolicFactor sym_;
  symbolic::SupernodePartition part_;
  std::vector<double> weights_;
};

TEST_F(LoadBalanceTest, WorkConserved) {
  const mapping::SubcubeMapping map =
      mapping::subtree_to_subcube(part_, 8, weights_);
  const mapping::LoadBalance lb =
      mapping::analyze_load_balance(part_, map, weights_);
  const double total_assigned = std::accumulate(
      lb.work_per_proc.begin(), lb.work_per_proc.end(), 0.0);
  const double total_work =
      std::accumulate(weights_.begin(), weights_.end(), 0.0);
  EXPECT_NEAR(total_assigned, total_work, 1e-6 * total_work);
  EXPECT_GE(lb.imbalance(), 1.0);
  EXPECT_LT(lb.imbalance(), 2.0);  // balanced grid, balanced tree
}

TEST_F(LoadBalanceTest, SingleProcessorIsPerfect) {
  const mapping::SubcubeMapping map =
      mapping::subtree_to_subcube(part_, 1, weights_);
  const mapping::LoadBalance lb =
      mapping::analyze_load_balance(part_, map, weights_);
  EXPECT_DOUBLE_EQ(lb.imbalance(), 1.0);
}

TEST_F(LoadBalanceTest, LevelProfileSumsToTotal) {
  const mapping::SubcubeMapping map =
      mapping::subtree_to_subcube(part_, 16, weights_);
  const mapping::LevelProfile prof =
      mapping::analyze_levels(part_, map, weights_);
  double sum = prof.sequential_work;
  for (double w : prof.work_at_level) sum += w;
  const double total =
      std::accumulate(weights_.begin(), weights_.end(), 0.0);
  EXPECT_NEAR(sum, total, 1e-9 * total);
  // Level 0 (the root) is shared by all 16 and must carry some work.
  ASSERT_FALSE(prof.work_at_level.empty());
  EXPECT_GT(prof.work_at_level[0], 0.0);
  EXPECT_GT(prof.sequential_work, 0.0);
}

}  // namespace
}  // namespace sparts
