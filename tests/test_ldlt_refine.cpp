// LDL^T factorization (symmetric indefinite) and iterative refinement.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "numeric/ldlt.hpp"
#include "numeric/simplicial.hpp"
#include "numeric/multifrontal.hpp"
#include "solver/sparse_solver.hpp"
#include "sparse/generators.hpp"
#include "symbolic/symbolic.hpp"
#include "trisolve/trisolve.hpp"

namespace sparts {
namespace {

real_t residual_general(const sparse::SymmetricCsc& a,
                        std::span<const real_t> x, std::span<const real_t> b,
                        index_t m) {
  return trisolve::relative_residual(a, x, b, m);
}

TEST(Ldlt, FactorsIndefiniteDiagDominant) {
  Rng rng(31);
  const sparse::SymmetricCsc a = sparse::random_symmetric_dd(60, 4, 0.4, rng);
  const symbolic::SymbolicFactor sym = symbolic::symbolic_cholesky(a);
  // Cholesky must reject it (some pivots negative)...
  EXPECT_THROW(numeric::simplicial_cholesky(a, sym), NumericalError);
  // ...LDL^T must succeed.
  const numeric::LdltFactor f = numeric::simplicial_ldlt(a, sym);
  // Both signs occur in D.
  int neg = 0, pos = 0;
  for (index_t j = 0; j < a.n(); ++j) (f.d(j) < 0 ? neg : pos) += 1;
  EXPECT_GT(neg, 0);
  EXPECT_GT(pos, 0);
}

TEST(Ldlt, SolveMatchesKnownSolution) {
  Rng rng(32);
  const sparse::SymmetricCsc a =
      sparse::random_symmetric_dd(80, 3, 0.3, rng);
  const symbolic::SymbolicFactor sym = symbolic::symbolic_cholesky(a);
  const numeric::LdltFactor f = numeric::simplicial_ldlt(a, sym);

  const index_t n = a.n(), m = 3;
  std::vector<real_t> x_true = sparse::random_rhs(n, m, rng);
  std::vector<real_t> b(static_cast<std::size_t>(n * m), 0.0);
  a.symm(1.0, x_true.data(), b.data(), m);
  std::vector<real_t> x = b;
  numeric::ldlt_solve(f, x.data(), m);
  for (std::size_t z = 0; z < x.size(); ++z) {
    EXPECT_NEAR(x[z], x_true[z], 1e-8);
  }
}

TEST(Ldlt, ReconstructsMatrix) {
  Rng rng(33);
  const sparse::SymmetricCsc a = sparse::random_symmetric_dd(25, 3, 0.5, rng);
  const symbolic::SymbolicFactor sym = symbolic::symbolic_cholesky(a);
  const numeric::LdltFactor f = numeric::simplicial_ldlt(a, sym);
  // A(i, j) == sum_k L(i,k) d_k L(j,k).
  for (index_t j = 0; j < a.n(); ++j) {
    auto rows = a.col_rows(j);
    auto vals = a.col_values(j);
    for (std::size_t z = 0; z < rows.size(); ++z) {
      const index_t i = rows[z];
      real_t s = 0.0;
      // k <= j <= i always holds here (lower-triangle storage).
      for (index_t k = 0; k <= j; ++k) {
        s += f.l_at(i, k) * f.d(k) * f.l_at(j, k);
      }
      EXPECT_NEAR(s, vals[z], 1e-9) << "(" << i << ", " << j << ")";
    }
  }
}

TEST(Ldlt, AgreesWithCholeskyOnSpd) {
  // On an SPD matrix, L_ldlt * sqrt(D) must equal the Cholesky factor.
  const sparse::SymmetricCsc a = sparse::grid2d(7, 7);
  const symbolic::SymbolicFactor sym = symbolic::symbolic_cholesky(a);
  const numeric::LdltFactor f = numeric::simplicial_ldlt(a, sym);
  const numeric::CscFactor l = numeric::simplicial_cholesky(a, sym);
  for (index_t j = 0; j < a.n(); ++j) {
    ASSERT_GT(f.d(j), 0.0);
    const real_t sd = std::sqrt(f.d(j));
    for (index_t i : sym.col_rows(j)) {
      EXPECT_NEAR(f.l_at(i, j) * sd, l.at(i, j), 1e-10);
    }
  }
}

TEST(Ldlt, RejectsExactZeroPivot) {
  sparse::Triplets t(2, 2);
  t.add(0, 0, 0.0);
  t.add(1, 1, 1.0);
  t.add(1, 0, 1.0);
  sparse::SymmetricCsc a = sparse::SymmetricCsc::from_triplets(t);
  const symbolic::SymbolicFactor sym = symbolic::symbolic_cholesky(a);
  EXPECT_THROW(numeric::simplicial_ldlt(a, sym), NumericalError);
}

TEST(Refinement, ImprovesOrHoldsResidual) {
  const sparse::SymmetricCsc a = sparse::grid2d(25, 25);
  const solver::SparseSolver s = solver::SparseSolver::factorize(a);
  const index_t n = a.n(), m = 2;
  Rng rng(34);
  std::vector<real_t> b = sparse::random_rhs(n, m, rng);

  std::vector<real_t> x_plain = s.solve(b, m);
  const real_t r_plain = residual_general(a, x_plain, b, m);

  real_t r_refined = 0.0;
  std::vector<real_t> x_ref = s.solve_refined(b, m, 3, 1e-16, &r_refined);
  EXPECT_LE(r_refined, r_plain * (1.0 + 1e-12));
  EXPECT_LT(r_refined, 1e-13);
}

TEST(Refinement, ReportsResidual) {
  const sparse::SymmetricCsc a = sparse::grid3d(5, 5, 5);
  const solver::SparseSolver s = solver::SparseSolver::factorize(a);
  Rng rng(35);
  std::vector<real_t> b = sparse::random_rhs(a.n(), 1, rng);
  real_t resid = -1.0;
  (void)s.solve_refined(b, 1, 2, 1e-14, &resid);
  EXPECT_GE(resid, 0.0);
  EXPECT_LT(resid, 1e-12);
}

}  // namespace
}  // namespace sparts
