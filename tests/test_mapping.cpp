// Block-cyclic maps and subtree-to-subcube mapping.
#include <gtest/gtest.h>

#include <numeric>

#include "mapping/block_cyclic.hpp"
#include "mapping/subtree_to_subcube.hpp"
#include "ordering/nested_dissection.hpp"
#include "sparse/generators.hpp"
#include "sparse/permutation.hpp"
#include "symbolic/supernodes.hpp"
#include "symbolic/symbolic.hpp"

namespace sparts {
namespace {

TEST(BlockCyclic1d, OwnershipAndLocality) {
  mapping::BlockCyclic1d map{4, 3};  // b = 4, q = 3
  EXPECT_EQ(map.owner(0), 0);
  EXPECT_EQ(map.owner(3), 0);
  EXPECT_EQ(map.owner(4), 1);
  EXPECT_EQ(map.owner(11), 2);
  EXPECT_EQ(map.owner(12), 0);  // wraps around
  const index_t n = 26;
  // Every index is owned exactly once and local indices are consistent.
  index_t total = 0;
  for (index_t r = 0; r < map.q; ++r) total += map.local_count(r, n);
  EXPECT_EQ(total, n);
  for (index_t i = 0; i < n; ++i) {
    const index_t r = map.owner(i);
    EXPECT_LT(map.local_index(i, n), map.local_count(r, n));
  }
}

TEST(BlockCyclic2d, NearSquareGrids) {
  auto g1 = mapping::BlockCyclic2d::near_square(1, 8);
  EXPECT_EQ(g1.qr * g1.qc, 1);
  auto g16 = mapping::BlockCyclic2d::near_square(16, 8);
  EXPECT_EQ(g16.qr, 4);
  EXPECT_EQ(g16.qc, 4);
  auto g32 = mapping::BlockCyclic2d::near_square(32, 8);
  EXPECT_EQ(g32.qr * g32.qc, 32);
  EXPECT_EQ(g32.qr, 8);
  EXPECT_EQ(g32.qc, 4);
}

TEST(BlockCyclic2d, OwnerCoversGrid) {
  auto g = mapping::BlockCyclic2d::near_square(8, 2);
  std::vector<int> hit(8, 0);
  for (index_t i = 0; i < 16; ++i) {
    for (index_t j = 0; j < 16; ++j) {
      const index_t o = g.owner(i, j);
      ASSERT_GE(o, 0);
      ASSERT_LT(o, 8);
      hit[static_cast<std::size_t>(o)] = 1;
    }
  }
  EXPECT_EQ(std::accumulate(hit.begin(), hit.end(), 0), 8);
}

class SubcubeTest : public ::testing::TestWithParam<index_t> {};

TEST_P(SubcubeTest, MappingIsConsistentOnGrid) {
  const index_t p = GetParam();
  const index_t k = 17;
  sparse::SymmetricCsc a0 = sparse::grid2d(k, k);
  const sparse::Permutation perm = ordering::nested_dissection_grid2d(k, k);
  const sparse::SymmetricCsc a = sparse::permute_symmetric(a0, perm);
  const symbolic::SymbolicFactor sym = symbolic::symbolic_cholesky(a);
  const symbolic::SupernodePartition part =
      symbolic::fundamental_supernodes(sym);

  const mapping::SubcubeMapping m = mapping::subtree_to_subcube(part, p);
  m.check_consistent(part);

  // The root supernode of a connected problem is shared by all p.
  index_t root = -1;
  for (index_t s = 0; s < part.num_supernodes(); ++s) {
    if (part.stree.parent[static_cast<std::size_t>(s)] == -1) root = s;
  }
  ASSERT_NE(root, -1);
  EXPECT_EQ(m.group[static_cast<std::size_t>(root)].count, p);
  EXPECT_EQ(m.level(root), 0);

  // Every processor owns at least one sequential supernode (p << columns).
  std::vector<bool> has_work(static_cast<std::size_t>(p), false);
  for (index_t s = 0; s < part.num_supernodes(); ++s) {
    const auto& g = m.group[static_cast<std::size_t>(s)];
    if (g.count == 1) has_work[static_cast<std::size_t>(g.base)] = true;
  }
  for (index_t r = 0; r < p; ++r) {
    EXPECT_TRUE(has_work[static_cast<std::size_t>(r)]) << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Powers, SubcubeTest,
                         ::testing::Values<index_t>(1, 2, 4, 8, 16));

TEST(Subcube, WorkBalanceWithinFactorOfTwo) {
  const index_t k = 31;
  sparse::SymmetricCsc a = sparse::permute_symmetric(
      sparse::grid2d(k, k), ordering::nested_dissection_grid2d(k, k));
  const symbolic::SymbolicFactor sym = symbolic::symbolic_cholesky(a);
  const symbolic::SupernodePartition part =
      symbolic::fundamental_supernodes(sym);
  const index_t p = 8;
  const auto weights = mapping::solve_work_weights(part);
  const mapping::SubcubeMapping m =
      mapping::subtree_to_subcube(part, p, weights);

  // Sequential work per processor should be reasonably balanced for a
  // regular grid with geometric nested dissection.
  std::vector<double> work(static_cast<std::size_t>(p), 0.0);
  for (index_t s = 0; s < part.num_supernodes(); ++s) {
    const auto& g = m.group[static_cast<std::size_t>(s)];
    if (g.count == 1) {
      work[static_cast<std::size_t>(g.base)] +=
          weights[static_cast<std::size_t>(s)];
    }
  }
  const double mx = *std::max_element(work.begin(), work.end());
  const double mn = *std::min_element(work.begin(), work.end());
  EXPECT_GT(mn, 0.0);
  EXPECT_LT(mx / mn, 2.5);
}

}  // namespace
}  // namespace sparts
