// Message-path tests: the lock-free SPSC ring under adversarial
// interleavings, the zero-copy owned-send lane's accounting, and the
// cross-backend conformance promise — simulator, thread backend (rings on
// AND off), and task backend produce bit-identical solves with the arena
// allocator active.  Registered under the CTest label `real` so the ring
// stress runs under -DSPARTS_SANITIZE=thread in CI: the SPSC ordering
// argument in spsc_ring.hpp is exactly the kind of claim TSan can refute.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "common/arena.hpp"
#include "common/rng.hpp"
#include "exec/process.hpp"
#include "exec/spsc_ring.hpp"
#include "exec/task_backend.hpp"
#include "exec/thread_backend.hpp"
#include "mapping/subtree_to_subcube.hpp"
#include "numeric/multifrontal.hpp"
#include "ordering/nested_dissection.hpp"
#include "partrisolve/partrisolve.hpp"
#include "simpar/machine.hpp"
#include "sparse/generators.hpp"
#include "sparse/permutation.hpp"

namespace sparts {
namespace {

// ---------------------------------------------------------------------
// SpscRing in isolation.
// ---------------------------------------------------------------------

TEST(SpscRing, FullRingRejectsPushAndLeavesValueIntact) {
  exec::SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) {
    int v = i;
    ASSERT_TRUE(ring.try_push(v));
  }
  int rejected = 99;
  EXPECT_FALSE(ring.try_push(rejected));
  EXPECT_EQ(rejected, 99);  // contract: NOT consumed on failure
  for (int i = 0; i < 4; ++i) {
    int out = -1;
    ASSERT_TRUE(ring.try_pop(&out));
    EXPECT_EQ(out, i);
  }
  int out = -1;
  EXPECT_FALSE(ring.try_pop(&out));
  EXPECT_FALSE(ring.has_items());
}

TEST(SpscRing, WraparoundPreservesFifoOrder) {
  // Default capacity (8) with a push-2/pop-1 cadence drives the cursors
  // across the wrap boundary hundreds of times; any masking bug shows up
  // as a reordered or clobbered element.
  exec::SpscRing<int> ring;
  int next_push = 0, next_pop = 0;
  while (next_pop < 1000) {
    for (int k = 0; k < 2; ++k) {
      int v = next_push;
      if (ring.try_push(v)) ++next_push;
    }
    int out = -1;
    if (ring.try_pop(&out)) {
      ASSERT_EQ(out, next_pop);
      ++next_pop;
    }
  }
}

TEST(SpscRing, MoveOnlyElementsMoveThrough) {
  // The message path moves payload buffers through the ring (the zero-copy
  // lane depends on it); a ring that secretly copied would not compile
  // for a move-only element type.
  exec::SpscRing<std::unique_ptr<int>> ring(2);
  auto v = std::make_unique<int>(42);
  ASSERT_TRUE(ring.try_push(v));
  EXPECT_EQ(v, nullptr);  // moved out on success
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(&out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 42);
}

TEST(SpscRing, TwoThreadStressIsOrderedAndLossless) {
  // One real producer thread against one real consumer thread, both
  // spinning full-speed with no synchronization besides the ring itself.
  // Small capacities maximize full/empty boundary crossings; run under
  // TSan this is the ordering proof for the release/acquire pair.
  for (const std::size_t capacity : {1ul, 2ul, 8ul, 64ul}) {
    constexpr int kCount = 20000;
    exec::SpscRing<int> ring(capacity);
    // Deliberately raw: the ring sits below the backends, so this
    // stress must not run through one.
    std::thread producer([&ring] {  // sparts-lint: allow(raw-thread)
      for (int i = 0; i < kCount;) {
        int v = i;
        if (ring.try_push(v)) {
          ++i;
        } else {
          std::this_thread::yield();
        }
      }
    });
    int popped = 0;
    int out = -1;
    while (popped < kCount) {
      if (ring.try_pop(&out)) {
        ASSERT_EQ(out, popped) << "capacity " << capacity;
        ++popped;
      } else {
        std::this_thread::yield();
      }
    }
    producer.join();
    EXPECT_FALSE(ring.has_items());
  }
}

TEST(SpscRing, TwoThreadStressWithOwnedBuffers) {
  // Same race, but the elements are heap buffers whose content is a pure
  // function of their index — a use-after-move or double-move in the slot
  // handoff corrupts the stamp even when the int test passes.
  constexpr int kCount = 4000;
  exec::SpscRing<std::vector<int>> ring;  // default (production) capacity
  std::thread producer([&ring] {  // sparts-lint: allow(raw-thread)
    for (int i = 0; i < kCount;) {
      std::vector<int> v(static_cast<std::size_t>(1 + i % 7), i);
      while (!ring.try_push(v)) std::this_thread::yield();
      ++i;
    }
  });
  for (int i = 0; i < kCount; ++i) {
    std::vector<int> out;
    while (!ring.try_pop(&out)) std::this_thread::yield();
    ASSERT_EQ(out.size(), static_cast<std::size_t>(1 + i % 7));
    for (const int x : out) ASSERT_EQ(x, i);
  }
  producer.join();
}

// ---------------------------------------------------------------------
// Zero-copy owned-send lane.
// ---------------------------------------------------------------------

/// Payload of `len` bytes whose content is a pure function of (seed, len).
exec::Payload stamped_payload(unsigned seed, std::size_t len) {
  exec::Payload p(len);
  for (std::size_t i = 0; i < len; ++i) {
    p[i] = static_cast<std::byte>((seed + i * 131) & 0xff);
  }
  return p;
}

void check_stamp(const exec::Payload& p, unsigned seed, std::size_t len) {
  ASSERT_EQ(p.size(), len);
  for (std::size_t i = 0; i < len; ++i) {
    ASSERT_EQ(p[i], static_cast<std::byte>((seed + i * 131) & 0xff))
        << "byte " << i;
  }
}

/// Ping-pong `rounds` owned sends of `len` bytes on `comm` and return the
/// run's total bytes_copied.
nnz_t owned_pingpong_copied(exec::Comm& comm, std::size_t len, int rounds) {
  const exec::RunStats stats =
      comm.run([len, rounds](exec::Process& proc) {
        for (int r = 0; r < rounds; ++r) {
          if (proc.rank() == 0) {
            proc.send_owned(1, r, stamped_payload(static_cast<unsigned>(r),
                                                  len));
            const exec::ReceivedMessage back = proc.recv(1, 1000 + r);
            check_stamp(back.payload, static_cast<unsigned>(r) + 7, len);
          } else {
            const exec::ReceivedMessage msg = proc.recv(0, r);
            check_stamp(msg.payload, static_cast<unsigned>(r), len);
            proc.send_owned(0, 1000 + r,
                            stamped_payload(static_cast<unsigned>(r) + 7,
                                            len));
          }
        }
      });
  return stats.total_bytes_copied();
}

TEST(ZeroCopy, OwnedSendsAboveThresholdCopyNothingOnThreads) {
  // The whole point of the owned lane: a panel-sized payload moves
  // through the ring without a single memcpy'd byte...
  exec::ThreadBackend::Config cfg;
  cfg.nprocs = 2;
  {
    exec::ThreadBackend backend(cfg);
    EXPECT_EQ(owned_pingpong_copied(backend, 4096, 20), 0);
  }
  // ...while sub-threshold owned sends deliberately take the copy lane
  // (copying a cacheline-sized message is cheaper than donating the
  // buffer) and must say so in the stats.
  {
    exec::ThreadBackend backend(cfg);
    const std::size_t len = exec::kZeroCopyThreshold / 2;
    EXPECT_EQ(owned_pingpong_copied(backend, len, 10),
              static_cast<nnz_t>(len) * 2 * 10);
  }
  // Rings off changes the transport, not the zero-copy contract: the
  // buffer still moves through the locked queue without a copy.
  {
    cfg.use_spsc = false;
    exec::ThreadBackend backend(cfg);
    EXPECT_EQ(owned_pingpong_copied(backend, 4096, 20), 0);
  }
}

TEST(ZeroCopy, OwnedSendsAboveThresholdCopyNothingOnTasks) {
  exec::TaskBackend::Config cfg;
  cfg.nprocs = 2;
  {
    exec::TaskBackend backend(cfg);
    EXPECT_EQ(owned_pingpong_copied(backend, 4096, 20), 0);
  }
  {
    exec::TaskBackend backend(cfg);
    const std::size_t len = exec::kZeroCopyThreshold / 2;
    EXPECT_EQ(owned_pingpong_copied(backend, len, 10),
              static_cast<nnz_t>(len) * 2 * 10);
  }
}

TEST(ZeroCopy, BurstThroughRingOverflowPreservesEveryPayload) {
  // Rank 0 fires a burst far deeper than the ring capacity before rank 1
  // drains any of it, forcing the ring-full spill into the locked queue
  // mid-stream; the receiver must still see every message, in tag order,
  // with intact content, regardless of which transport each one took.
  constexpr int kBurst = 200;  // >> SpscRing kDefaultCapacity
  exec::ThreadBackend::Config cfg;
  cfg.nprocs = 2;
  exec::ThreadBackend backend(cfg);
  backend.run([](exec::Process& proc) {
    if (proc.rank() == 0) {
      for (int i = 0; i < kBurst; ++i) {
        // Mix lanes: even tags owned (zero-copy), odd tags plain copies.
        const std::size_t len = 64 + static_cast<std::size_t>(i % 5) * 256;
        if (i % 2 == 0) {
          proc.send_owned(1, i, stamped_payload(static_cast<unsigned>(i),
                                                len));
        } else {
          const exec::Payload p =
              stamped_payload(static_cast<unsigned>(i), len);
          proc.send(1, i, {p.data(), p.size()});
        }
      }
      proc.recv(1, kBurst);  // barrier: don't exit while 1 still drains
    } else {
      for (int i = 0; i < kBurst; ++i) {
        const exec::ReceivedMessage msg = proc.recv(0, i);
        const std::size_t len = 64 + static_cast<std::size_t>(i % 5) * 256;
        check_stamp(msg.payload, static_cast<unsigned>(i), len);
      }
      proc.send_value<int>(0, kBurst, 1);
    }
  });
}

// ---------------------------------------------------------------------
// Cross-backend conformance with the arena on.
// ---------------------------------------------------------------------

/// Forward+backward solve of an ND-ordered 13x13 grid on `comm`; returns x.
std::vector<real_t> solve_on(exec::Comm& comm,
                             const numeric::SupernodalFactor& l,
                             const sparse::SymmetricCsc& a,
                             std::span<const real_t> rhs, index_t m) {
  const mapping::SubcubeMapping map =
      mapping::subtree_to_subcube(l.partition(), comm.nprocs());
  partrisolve::DistributedTrisolver solver(l, map, {});
  std::vector<real_t> x(static_cast<std::size_t>(a.n() * m), 0.0);
  solver.solve(comm, rhs, x, m);
  return x;
}

TEST(Conformance, AllBackendsBitIdenticalWithArenaOn) {
  // The PR-wide invariant: the SPSC rings, the zero-copy lane, and the
  // arena allocator are pure transport/memory changes — the simulator,
  // the thread backend with rings on, with rings off, and the fiber task
  // backend must produce the *bit-identical* x for the same program.
  const bool arena_was_on = common::arena_enabled();
  common::arena_force_enabled_for_test(true);
  const std::size_t allocs_before = common::arena_stats().total_allocs;

  sparse::SymmetricCsc a0 = sparse::grid2d(13, 13);
  const sparse::Permutation perm = ordering::nested_dissection_grid2d(13, 13);
  sparse::SymmetricCsc a = sparse::permute_symmetric(a0, perm);
  const numeric::SupernodalFactor l = numeric::multifrontal_cholesky(a);
  constexpr index_t m = 3;
  Rng rng(97);
  const std::vector<real_t> rhs = sparse::random_rhs(a.n(), m, rng);

  for (const index_t p : {2, 4, 8}) {
    simpar::Machine::Config sim_cfg;
    sim_cfg.nprocs = p;
    simpar::Machine machine(sim_cfg);
    const std::vector<real_t> ref = solve_on(machine, l, a, rhs, m);

    exec::ThreadBackend::Config spsc_cfg;
    spsc_cfg.nprocs = p;
    exec::ThreadBackend spsc(spsc_cfg);
    EXPECT_EQ(solve_on(spsc, l, a, rhs, m), ref) << "threads/spsc p=" << p;

    exec::ThreadBackend::Config mutex_cfg;
    mutex_cfg.nprocs = p;
    mutex_cfg.use_spsc = false;
    exec::ThreadBackend mutex_backend(mutex_cfg);
    EXPECT_EQ(solve_on(mutex_backend, l, a, rhs, m), ref)
        << "threads/mutex p=" << p;

    exec::TaskBackend::Config task_cfg;
    task_cfg.nprocs = p;
    exec::TaskBackend tasks(task_cfg);
    EXPECT_EQ(solve_on(tasks, l, a, rhs, m), ref) << "tasks p=" << p;
  }

  // The runs above must actually have exercised the arena (message
  // payloads are ArenaVector<std::byte>), not silently fallen back.
  EXPECT_GT(common::arena_stats().total_allocs, allocs_before);
  common::arena_force_enabled_for_test(arena_was_on);
}

}  // namespace
}  // namespace sparts
