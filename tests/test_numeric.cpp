// Numerical factorization and sequential triangular solves, swept over
// matrix families, orderings, and amalgamation settings (property-style).
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include <sstream>

#include "numeric/factor_io.hpp"
#include "numeric/multifrontal.hpp"
#include "numeric/simplicial.hpp"
#include "ordering/mindeg.hpp"
#include "ordering/nested_dissection.hpp"
#include "sparse/generators.hpp"
#include "sparse/permutation.hpp"
#include "symbolic/supernodes.hpp"
#include "symbolic/symbolic.hpp"
#include "trisolve/trisolve.hpp"

namespace sparts::numeric {
namespace {

sparse::SymmetricCsc make_family(const std::string& family, std::uint64_t seed) {
  Rng rng(seed);
  if (family == "grid2d") return sparse::grid2d(11, 9);
  if (family == "grid2d9") return sparse::grid2d(8, 8, 9);
  if (family == "grid3d") return sparse::grid3d(5, 4, 4);
  if (family == "grid3d27") return sparse::grid3d(4, 4, 3, 27);
  if (family == "random") return sparse::random_spd(80, 4, rng);
  if (family == "jittered") return sparse::jittered_mesh2d(9, 9, rng);
  if (family == "figure1") return sparse::figure1_matrix();
  throw Error("unknown family " + family);
}

// (family, ordering, amalgamate)
using Combo = std::tuple<std::string, std::string, bool>;

class FactorSolveTest : public ::testing::TestWithParam<Combo> {};

TEST_P(FactorSolveTest, ResidualIsTiny) {
  const auto& [family, ord, amalg] = GetParam();
  sparse::SymmetricCsc a0 = make_family(family, 99);
  sparse::Permutation perm =
      ord == "nd"   ? ordering::nested_dissection(a0)
      : ord == "md" ? ordering::minimum_degree(a0)
                    : sparse::Permutation(a0.n());
  sparse::SymmetricCsc a = sparse::permute_symmetric(a0, perm);

  const symbolic::SymbolicFactor sym = symbolic::symbolic_cholesky(a);
  symbolic::SupernodePartition part = symbolic::fundamental_supernodes(sym);
  if (amalg) part = symbolic::amalgamate(sym, part, 12, 6);

  FactorizationStats stats;
  const SupernodalFactor l = multifrontal_cholesky(a, part, &stats);
  EXPECT_GT(stats.flops, 0);

  const index_t n = a.n();
  const index_t m = 3;
  Rng rng(5);
  std::vector<real_t> b = sparse::random_rhs(n, m, rng);
  std::vector<real_t> x = b;
  trisolve::SolveStats sstats;
  trisolve::full_solve(l, x.data(), m, &sstats);
  EXPECT_GT(sstats.flops, 0);
  EXPECT_LT(trisolve::relative_residual(a, x, b, m), 1e-9)
      << family << "/" << ord << "/amalg=" << amalg;
}

INSTANTIATE_TEST_SUITE_P(
    Families, FactorSolveTest,
    ::testing::Combine(::testing::Values("grid2d", "grid2d9", "grid3d",
                                         "grid3d27", "random", "jittered",
                                         "figure1"),
                       ::testing::Values("nd", "md", "natural"),
                       ::testing::Bool()));

TEST(Multifrontal, MatchesSimplicialEntrywise) {
  sparse::SymmetricCsc a = sparse::permute_symmetric(
      sparse::grid3d(4, 4, 3), ordering::nested_dissection_grid3d(4, 4, 3));
  const symbolic::SymbolicFactor sym = symbolic::symbolic_cholesky(a);
  const CscFactor ref = simplicial_cholesky(a, sym);
  const SupernodalFactor l = multifrontal_cholesky(a);
  for (index_t j = 0; j < a.n(); ++j) {
    for (index_t i : sym.col_rows(j)) {
      EXPECT_NEAR(l.at(i, j), ref.at(i, j), 1e-11);
    }
  }
}

TEST(Multifrontal, RejectsIndefiniteMatrix) {
  sparse::Triplets t(3, 3);
  t.add(0, 0, 1.0);
  t.add(1, 1, 1.0);
  t.add(2, 2, 1.0);
  t.add(1, 0, 5.0);  // breaks positive definiteness
  sparse::SymmetricCsc a = sparse::SymmetricCsc::from_triplets(t);
  EXPECT_THROW(multifrontal_cholesky(a), NumericalError);
}

TEST(Multifrontal, StatsTrackPeaks) {
  sparse::SymmetricCsc a = sparse::permute_symmetric(
      sparse::grid2d(15, 15), ordering::nested_dissection_grid2d(15, 15));
  FactorizationStats stats;
  multifrontal_cholesky(a, &stats);
  EXPECT_GT(stats.peak_front_entries, 0);
  EXPECT_GT(stats.peak_stack_entries, 0);
  // The peak front is the square of the largest supernode height.
  EXPECT_LT(stats.peak_front_entries,
            static_cast<nnz_t>(a.n()) * a.n());
}

TEST(SupernodalFactor, AccessorsAndCounts) {
  sparse::SymmetricCsc a = sparse::permute_symmetric(
      sparse::grid2d(6, 6), ordering::nested_dissection_grid2d(6, 6));
  const symbolic::SymbolicFactor sym = symbolic::symbolic_cholesky(a);
  const SupernodalFactor l = multifrontal_cholesky(a);
  EXPECT_EQ(l.factor_nnz(), sym.nnz());
  EXPECT_GE(l.stored_entries(), l.factor_nnz());
  EXPECT_GT(l.solve_flops(2), l.solve_flops(1));
  // Entries outside the structure read as zero.
  EXPECT_DOUBLE_EQ(l.at(a.n() - 1, 0) != 0.0 ||
                       sym.col_rows(0).back() != a.n() - 1,
                   true);
}

TEST(SimplicialSolves, ForwardBackwardRoundTrip) {
  sparse::SymmetricCsc a = sparse::permute_symmetric(
      sparse::grid2d(9, 9), ordering::nested_dissection_grid2d(9, 9));
  const symbolic::SymbolicFactor sym = symbolic::symbolic_cholesky(a);
  const CscFactor l = simplicial_cholesky(a, sym);
  const index_t n = a.n(), m = 2;
  Rng rng(17);
  std::vector<real_t> b = sparse::random_rhs(n, m, rng);
  std::vector<real_t> x = b;
  csc_forward_solve(l, x.data(), m);
  csc_backward_solve(l, x.data(), m);
  EXPECT_LT(trisolve::relative_residual(a, x, b, m), 1e-10);
}

TEST(Trisolve, ForwardOnlyMatchesSimplicialForward) {
  sparse::SymmetricCsc a = sparse::permute_symmetric(
      sparse::grid2d(7, 7), ordering::nested_dissection_grid2d(7, 7));
  const symbolic::SymbolicFactor sym = symbolic::symbolic_cholesky(a);
  const CscFactor lref = simplicial_cholesky(a, sym);
  const SupernodalFactor l = multifrontal_cholesky(a);
  const index_t n = a.n();
  Rng rng(23);
  std::vector<real_t> b = sparse::random_rhs(n, 1, rng);
  std::vector<real_t> y1 = b, y2 = b;
  trisolve::forward_solve(l, y1.data(), 1);
  csc_forward_solve(lref, y2.data(), 1);
  for (index_t i = 0; i < n; ++i) {
    EXPECT_NEAR(y1[static_cast<std::size_t>(i)],
                y2[static_cast<std::size_t>(i)], 1e-11);
  }
}

TEST(FactorIo, RoundTripThroughStream) {
  sparse::SymmetricCsc a = sparse::permute_symmetric(
      sparse::grid2d(11, 9), ordering::nested_dissection_grid2d(11, 9));
  const SupernodalFactor original = multifrontal_cholesky(a);

  std::stringstream ss;
  write_factor(original, ss);
  const SupernodalFactor loaded = read_factor(ss);

  ASSERT_EQ(loaded.num_supernodes(), original.num_supernodes());
  ASSERT_EQ(loaded.n(), original.n());
  for (index_t s = 0; s < original.num_supernodes(); ++s) {
    auto ob = original.block(s);
    auto lb = loaded.block(s);
    ASSERT_EQ(ob.size(), lb.size());
    for (std::size_t z = 0; z < ob.size(); ++z) {
      EXPECT_DOUBLE_EQ(ob[z], lb[z]);
    }
  }

  // The loaded factor must solve.
  const index_t n = a.n(), m = 2;
  Rng rng(41);
  std::vector<real_t> b = sparse::random_rhs(n, m, rng);
  std::vector<real_t> x = b;
  trisolve::full_solve(loaded, x.data(), m);
  EXPECT_LT(trisolve::relative_residual(a, x, b, m), 1e-10);
}

TEST(FactorIo, RejectsGarbage) {
  std::stringstream ss("definitely not a factor file");
  EXPECT_THROW(read_factor(ss), IoError);
}

}  // namespace
}  // namespace sparts::numeric
