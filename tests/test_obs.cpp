// Tests for the observability layer (src/obs): RunStats aggregation and
// speedup/efficiency edge cases, the metrics registry (counters, gauges,
// base-2 histograms), the event tracer (ring overwrite, timeline
// arithmetic, balanced Chrome export), and the phase profiler.
// Registered under the CTest label `obs`.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "exec/stats.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "obs/trace.hpp"

namespace sparts {
namespace {

std::size_t count_occurrences(const std::string& hay, const std::string& s) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(s); pos != std::string::npos;
       pos = hay.find(s, pos + s.size())) {
    ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------
// RunStats aggregation
// ---------------------------------------------------------------------------

exec::RunStats two_proc_stats() {
  exec::RunStats rs;
  exec::ProcStats p0;
  p0.clock = 2.0;
  p0.compute_time = 1.5;
  p0.flops = 100;
  p0.messages_sent = 3;
  p0.words_sent = 30;
  p0.messages_received = 2;
  p0.words_received = 20;
  exec::ProcStats p1;
  p1.clock = 4.0;
  p1.compute_time = 2.5;
  p1.flops = 200;
  p1.messages_sent = 2;
  p1.words_sent = 20;
  p1.messages_received = 3;
  p1.words_received = 30;
  rs.procs = {p0, p1};
  return rs;
}

TEST(RunStats, AggregatesAcrossProcs) {
  const exec::RunStats rs = two_proc_stats();
  EXPECT_DOUBLE_EQ(rs.parallel_time(), 4.0);
  EXPECT_EQ(rs.total_flops(), 300);
  EXPECT_EQ(rs.total_messages(), 5);
  EXPECT_EQ(rs.total_words(), 50);
  EXPECT_EQ(rs.total_messages_received(), 5);
  // sum(compute) / (p * T_p) = 4.0 / (2 * 4.0)
  EXPECT_DOUBLE_EQ(rs.efficiency(), 0.5);
}

TEST(RunStats, ClosedRunReceivesWhatWasSent) {
  // In a closed run every send is matched by a recv, so the two totals
  // agree; the conformance test checks this on live backends.
  const exec::RunStats rs = two_proc_stats();
  EXPECT_EQ(rs.total_messages_received(), rs.total_messages());
}

TEST(RunStats, EmptyRunIsWellDefined) {
  const exec::RunStats rs;
  EXPECT_DOUBLE_EQ(rs.parallel_time(), 0.0);
  EXPECT_EQ(rs.total_flops(), 0);
  EXPECT_EQ(rs.total_messages(), 0);
  EXPECT_EQ(rs.total_words(), 0);
  EXPECT_EQ(rs.total_messages_received(), 0);
  // By convention an empty (or zero-time) run is perfectly efficient
  // rather than dividing by zero.
  EXPECT_DOUBLE_EQ(rs.efficiency(), 1.0);
}

TEST(RunStats, ZeroClockRunHasUnitEfficiency) {
  exec::RunStats rs;
  rs.procs.resize(3);  // all clocks zero
  EXPECT_DOUBLE_EQ(rs.parallel_time(), 0.0);
  EXPECT_DOUBLE_EQ(rs.efficiency(), 1.0);
}

TEST(SpeedupEfficiency, NormalCase) {
  EXPECT_DOUBLE_EQ(exec::speedup(8.0, 2.0), 4.0);
  EXPECT_DOUBLE_EQ(exec::efficiency(8.0, 4, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(exec::efficiency(8.0, 8, 2.0), 0.5);
}

TEST(SpeedupEfficiency, DegenerateInputsReturnZero) {
  EXPECT_DOUBLE_EQ(exec::speedup(8.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(exec::speedup(8.0, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(exec::efficiency(8.0, 0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(exec::efficiency(8.0, -4, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(exec::efficiency(8.0, 4, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(exec::efficiency(8.0, 4, -2.0), 0.0);
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(Histogram, BucketBoundsArePowersOfTwo) {
  EXPECT_EQ(obs::Histogram::bucket_bound(0), 0);
  EXPECT_EQ(obs::Histogram::bucket_bound(1), 1);
  EXPECT_EQ(obs::Histogram::bucket_bound(2), 2);
  EXPECT_EQ(obs::Histogram::bucket_bound(3), 4);
  EXPECT_EQ(obs::Histogram::bucket_bound(10), 512);
}

TEST(Histogram, BucketOfPicksSmallestCoveringBucket) {
  EXPECT_EQ(obs::Histogram::bucket_of(0), 0);
  EXPECT_EQ(obs::Histogram::bucket_of(-5), 0);  // clamped
  EXPECT_EQ(obs::Histogram::bucket_of(1), 1);
  EXPECT_EQ(obs::Histogram::bucket_of(2), 2);
  EXPECT_EQ(obs::Histogram::bucket_of(3), 3);
  EXPECT_EQ(obs::Histogram::bucket_of(4), 3);
  EXPECT_EQ(obs::Histogram::bucket_of(5), 4);
  // bucket_of(v) always names a bucket whose bound covers v ...
  for (std::int64_t v : {0, 1, 2, 3, 7, 8, 9, 1000, 1 << 20}) {
    const int b = obs::Histogram::bucket_of(v);
    EXPECT_GE(obs::Histogram::bucket_bound(b), v) << "value " << v;
    // ... and (for v > 0) the previous bucket does not.
    if (v > 0) EXPECT_LT(obs::Histogram::bucket_bound(b - 1), v);
  }
  // Huge values saturate into the last bucket instead of indexing out.
  EXPECT_EQ(obs::Histogram::bucket_of(INT64_MAX), obs::Histogram::kBuckets - 1);
}

TEST(Histogram, ObserveTracksCountSumMinMax) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.min(), 0);  // empty convention
  EXPECT_EQ(h.max(), 0);
  h.observe(8);
  h.observe(3);
  h.observe(100);
  EXPECT_EQ(h.count(), 3);
  EXPECT_EQ(h.sum(), 111);
  EXPECT_EQ(h.min(), 3);
  EXPECT_EQ(h.max(), 100);
  EXPECT_EQ(h.bucket_count(obs::Histogram::bucket_of(8)), 1);
  EXPECT_EQ(h.bucket_count(obs::Histogram::bucket_of(3)), 1);
  EXPECT_EQ(h.bucket_count(obs::Histogram::bucket_of(100)), 1);
  h.reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.sum(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(Registry, InstrumentsAreStableAcrossLookupsAndReset) {
  obs::Registry& reg = obs::metrics();
  obs::Counter& c = reg.counter("test.obs.counter");
  c.add(5);
  EXPECT_EQ(&c, &reg.counter("test.obs.counter"));
  EXPECT_EQ(reg.counter("test.obs.counter").value(), 5);
  obs::Gauge& g = reg.gauge("test.obs.gauge");
  g.set(2.5);
  reg.reset();
  // reset() zeroes values but keeps the instruments (and references) alive.
  EXPECT_EQ(c.value(), 0);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(&c, &reg.counter("test.obs.counter"));
}

TEST(Registry, WriteJsonContainsRegisteredInstruments) {
  obs::Registry& reg = obs::metrics();
  reg.reset();
  reg.counter("test.json.counter").add(7);
  reg.gauge("test.json.gauge").set(1.5);
  reg.histogram("test.json.hist").observe(64);
  std::ostringstream out;
  reg.write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"test.json.counter\": 7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"test.json.gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json.hist\""), std::string::npos);
  EXPECT_NE(json.find("\"le_64\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

// The tracer is a process-wide singleton; every test that enables it must
// disable + clear on exit so the suite's tests stay independent.
struct TracerGuard {
  explicit TracerGuard(std::size_t cap) {
    obs::Tracer::instance().enable(cap);
  }
  ~TracerGuard() {
    obs::Tracer::instance().disable();
    obs::Tracer::instance().clear();
  }
};

TEST(Tracer, DisabledRecordsNothing) {
  obs::Tracer& t = obs::Tracer::instance();
  t.clear();
  ASSERT_FALSE(obs::Tracer::enabled());
  t.record(0, obs::EventKind::instant, obs::Category::other, "noop", 1.0);
  EXPECT_EQ(t.event_count(), 0u);
}

TEST(Tracer, RingOverwritesOldestAndCountsDrops) {
  TracerGuard guard(4);
  obs::Tracer& t = obs::Tracer::instance();
  for (int i = 0; i < 10; ++i) {
    t.record(0, obs::EventKind::instant, obs::Category::other, "tick",
             static_cast<double>(i), i);
  }
  EXPECT_EQ(t.event_count(), 4u);
  EXPECT_EQ(t.dropped_count(), 6u);
  std::ostringstream out;
  t.write_chrome_trace(out);
  const std::string json = out.str();
  // Only the newest four instants survive the ring.
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"i\""), 4u);
  EXPECT_NE(json.find("\"dropped_events\": 6"), std::string::npos) << json;
}

TEST(Tracer, TimelineMapsLocalClocksPastRunBase) {
  TracerGuard guard(64);
  obs::Tracer& t = obs::Tracer::instance();
  EXPECT_DOUBLE_EQ(t.timeline(), 0.0);
  t.advance_timeline(2.0);
  EXPECT_DOUBLE_EQ(t.timeline(), 2.0);
  t.advance_timeline(-1.0);  // negative deltas clamp to zero
  EXPECT_DOUBLE_EQ(t.timeline(), 2.0);
  t.begin_run();
  // Inside the run, a backend-local clock of 0.5s lands at base + 0.5.
  EXPECT_DOUBLE_EQ(t.to_timeline(0.5), 2.5);
  t.end_run(3.0);
  EXPECT_DOUBLE_EQ(t.timeline(), 5.0);
  // The base stays frozen after end_run so finalize-time events (checker
  // findings) still map into the finished run's interval.
  EXPECT_DOUBLE_EQ(t.to_timeline(0.5), 2.5);
}

TEST(Tracer, ChromeExportBalancesSpans) {
  TracerGuard guard(64);
  obs::Tracer& t = obs::Tracer::instance();
  // Rank 0: a well-formed span plus an instant.
  t.record(0, obs::EventKind::span_begin, obs::Category::compute, "work", 1.0);
  t.record(0, obs::EventKind::instant, obs::Category::other, "mark", 1.5);
  t.record(0, obs::EventKind::span_end, obs::Category::compute, "work", 2.0);
  // Rank 1: an orphaned end (its begin was "overwritten") and an
  // unclosed begin.
  t.record(1, obs::EventKind::span_end, obs::Category::compute, "lost", 0.5);
  t.record(1, obs::EventKind::span_begin, obs::Category::compute, "open", 1.0);
  t.record(1, obs::EventKind::instant, obs::Category::other, "last", 3.0);

  std::ostringstream out;
  t.write_chrome_trace(out);
  const std::string json = out.str();
  // Balanced: the orphaned end is dropped, the unclosed begin is closed
  // at the track's last timestamp.
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"B\""),
            count_occurrences(json, "\"ph\": \"E\""));
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"B\""), 2u);
  EXPECT_EQ(json.find("\"lost\""), std::string::npos);
  EXPECT_NE(json.find("\"open\""), std::string::npos);
  // Instants carry the thread scope; tracks are named.
  EXPECT_NE(json.find("\"s\": \"t\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Phase profiler
// ---------------------------------------------------------------------------

TEST(PhaseProfiler, HostAndParallelPhasesRecord) {
  obs::PhaseProfiler& prof = obs::PhaseProfiler::instance();
  prof.clear();
  obs::Tracer::instance().clear();

  { obs::PhaseScope host("host_work"); }

  {
    obs::PhaseScope par("spmd_work");
    obs::ParallelPhaseStats stats;
    stats.procs = 2;
    stats.parallel_time = 0.25;
    stats.flops = 1000;
    stats.messages = 4;
    stats.words = 64;
    stats.compute_time = {0.2, 0.15};
    stats.send_time = {0.01, 0.02};
    stats.idle_time = {0.04, 0.08};
    par.set_parallel(stats);
  }

  ASSERT_EQ(prof.records().size(), 2u);
  const obs::PhaseRecord& host = prof.records()[0];
  EXPECT_EQ(host.name, "host_work");
  EXPECT_FALSE(host.parallel);
  EXPECT_GE(host.duration, 0.0);
  const obs::PhaseRecord& par = prof.records()[1];
  EXPECT_EQ(par.name, "spmd_work");
  EXPECT_TRUE(par.parallel);
  // A parallel phase's duration is the backend time, not host wall time.
  EXPECT_GE(par.duration, 0.25);
  EXPECT_EQ(par.stats.procs, 2);
  EXPECT_EQ(par.stats.flops, 1000);

  std::ostringstream out;
  prof.write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"name\": \"spmd_work\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"parallel\": true"), std::string::npos);
  EXPECT_NE(json.find("\"ranks\": ["), std::string::npos);

  std::ostringstream report;
  obs::write_metrics_report(report);
  const std::string rep = report.str();
  EXPECT_NE(rep.find("\"metrics\""), std::string::npos);
  EXPECT_NE(rep.find("\"phases\""), std::string::npos);

  prof.clear();
  obs::Tracer::instance().clear();
}

}  // namespace
}  // namespace sparts
