// Elimination trees, postorder, and the fill-reducing orderings.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "ordering/etree.hpp"
#include "ordering/mindeg.hpp"
#include "ordering/multilevel.hpp"
#include "ordering/nested_dissection.hpp"
#include "ordering/rcm.hpp"
#include "sparse/generators.hpp"
#include "sparse/permutation.hpp"
#include "symbolic/symbolic.hpp"

namespace sparts::ordering {
namespace {

/// nnz(L) of the matrix under a given ordering.
nnz_t fill_under(const sparse::SymmetricCsc& a, const sparse::Permutation& p) {
  const sparse::SymmetricCsc b = sparse::permute_symmetric(a, p);
  return symbolic::symbolic_cholesky(b).nnz();
}

TEST(Etree, KnownSmallExample) {
  // Arrow matrix: every column connected to the last one.  Tree is a star
  // rooted at n-1.
  sparse::Triplets t(5, 5);
  for (index_t i = 0; i < 5; ++i) t.add(i, i, 4.0);
  for (index_t i = 0; i < 4; ++i) t.add(4, i, -1.0);
  sparse::SymmetricCsc a = sparse::SymmetricCsc::from_triplets(t);
  EliminationTree tree = elimination_tree(a);
  for (index_t v = 0; v < 4; ++v) EXPECT_EQ(tree.parent[static_cast<std::size_t>(v)], 4);
  EXPECT_EQ(tree.parent[4], -1);
}

TEST(Etree, TridiagonalIsAChain) {
  sparse::Triplets t(6, 6);
  for (index_t i = 0; i < 6; ++i) t.add(i, i, 4.0);
  for (index_t i = 0; i + 1 < 6; ++i) t.add(i + 1, i, -1.0);
  sparse::SymmetricCsc a = sparse::SymmetricCsc::from_triplets(t);
  EliminationTree tree = elimination_tree(a);
  for (index_t v = 0; v + 1 < 6; ++v) {
    EXPECT_EQ(tree.parent[static_cast<std::size_t>(v)], v + 1);
  }
}

TEST(Etree, PostorderIsValid) {
  sparse::SymmetricCsc a = sparse::grid2d(6, 7);
  EliminationTree tree = elimination_tree(a);
  auto order = postorder(tree);
  EXPECT_TRUE(is_postorder(tree, order));
  // A shuffled order is (almost surely) not a postorder.
  auto bad = order;
  std::swap(bad.front(), bad.back());
  EXPECT_FALSE(is_postorder(tree, bad));
}

TEST(Etree, SubtreeSizesSumAtRoots) {
  sparse::SymmetricCsc a = sparse::grid2d(5, 5);
  EliminationTree tree = elimination_tree(a);
  auto sizes = subtree_sizes(tree);
  index_t total = 0;
  for (index_t v = 0; v < tree.n(); ++v) {
    if (tree.parent[static_cast<std::size_t>(v)] == -1) {
      total += sizes[static_cast<std::size_t>(v)];
    }
  }
  EXPECT_EQ(total, tree.n());
}

TEST(Etree, LevelsAndHeight) {
  sparse::SymmetricCsc a = sparse::grid2d(4, 4);
  EliminationTree tree = elimination_tree(a);
  auto levels = tree_levels(tree);
  const index_t h = tree_height(tree);
  EXPECT_GT(h, 0);
  for (index_t v = 0; v < tree.n(); ++v) {
    const index_t p = tree.parent[static_cast<std::size_t>(v)];
    if (p != -1) {
      EXPECT_EQ(levels[static_cast<std::size_t>(v)],
                levels[static_cast<std::size_t>(p)] + 1);
    } else {
      EXPECT_EQ(levels[static_cast<std::size_t>(v)], 0);
    }
  }
}

TEST(Etree, RelabelByPostorderGivesMonotoneParents) {
  sparse::SymmetricCsc a = sparse::grid2d(5, 6);
  EliminationTree tree = elimination_tree(a);
  auto order = postorder(tree);
  EliminationTree re = relabel_tree(tree, order);
  for (index_t v = 0; v < re.n(); ++v) {
    const index_t p = re.parent[static_cast<std::size_t>(v)];
    if (p != -1) EXPECT_GT(p, v);
  }
}

TEST(Rcm, ReducesBandwidthOnGrid) {
  // A randomly permuted grid has large bandwidth; RCM shrinks it.
  sparse::SymmetricCsc a0 = sparse::grid2d(12, 12);
  Rng rng(7);
  std::vector<index_t> shuffled(static_cast<std::size_t>(a0.n()));
  std::iota(shuffled.begin(), shuffled.end(), index_t{0});
  rng.shuffle(shuffled);
  sparse::SymmetricCsc a =
      sparse::permute_symmetric(a0, sparse::Permutation(shuffled));

  auto bandwidth = [](const sparse::SymmetricCsc& m) {
    index_t bw = 0;
    for (index_t j = 0; j < m.n(); ++j) {
      for (index_t i : m.col_rows(j)) bw = std::max(bw, i - j);
    }
    return bw;
  };
  const index_t before = bandwidth(a);
  const sparse::Permutation p = rcm(a);
  const index_t after = bandwidth(sparse::permute_symmetric(a, p));
  EXPECT_LT(after, before / 2);
}

TEST(MinimumDegree, ReducesFillVersusNatural) {
  Rng rng(8);
  sparse::SymmetricCsc a0 = sparse::grid2d(12, 12);
  // Shuffle so "natural" is bad.
  std::vector<index_t> shuffled(static_cast<std::size_t>(a0.n()));
  std::iota(shuffled.begin(), shuffled.end(), index_t{0});
  rng.shuffle(shuffled);
  sparse::SymmetricCsc a =
      sparse::permute_symmetric(a0, sparse::Permutation(shuffled));

  const nnz_t natural = fill_under(a, sparse::Permutation(a.n()));
  const nnz_t md = fill_under(a, minimum_degree(a));
  EXPECT_LT(md, natural);
}

TEST(NestedDissection, GeometricOrderingIsAPermutation) {
  const sparse::Permutation p = nested_dissection_grid2d(9, 7);
  EXPECT_EQ(p.n(), 63);
  const sparse::Permutation q = nested_dissection_grid3d(4, 5, 3);
  EXPECT_EQ(q.n(), 60);
}

TEST(NestedDissection, SeparatorDisconnects) {
  sparse::SymmetricCsc a = sparse::grid2d(10, 10);
  sparse::Graph g = sparse::Graph::from_symmetric(a);
  Separator s = find_vertex_separator(g);
  EXPECT_FALSE(s.left.empty());
  EXPECT_FALSE(s.right.empty());
  EXPECT_FALSE(s.sep.empty());
  EXPECT_EQ(static_cast<index_t>(s.left.size() + s.right.size() +
                                 s.sep.size()),
            g.n());
  // No edge may connect left to right.
  std::vector<int> side(static_cast<std::size_t>(g.n()), -1);
  for (index_t v : s.left) side[static_cast<std::size_t>(v)] = 0;
  for (index_t v : s.right) side[static_cast<std::size_t>(v)] = 1;
  for (index_t v : s.left) {
    for (index_t u : g.neighbors(v)) {
      EXPECT_NE(side[static_cast<std::size_t>(u)], 1)
          << "edge " << v << "-" << u << " crosses the separator";
    }
  }
  // A good grid separator is O(sqrt(n)).
  EXPECT_LT(static_cast<index_t>(s.sep.size()), 25);
}

TEST(NestedDissection, GeneralNdBeatsNaturalOnShuffledGrid) {
  Rng rng(9);
  sparse::SymmetricCsc a0 = sparse::grid2d(14, 14);
  std::vector<index_t> shuffled(static_cast<std::size_t>(a0.n()));
  std::iota(shuffled.begin(), shuffled.end(), index_t{0});
  rng.shuffle(shuffled);
  sparse::SymmetricCsc a =
      sparse::permute_symmetric(a0, sparse::Permutation(shuffled));
  const nnz_t natural = fill_under(a, sparse::Permutation(a.n()));
  const nnz_t nd = fill_under(a, nested_dissection(a));
  EXPECT_LT(nd, natural);
}

TEST(NestedDissection, GeometricNdNearOptimalFill) {
  // Geometric ND on a k x k grid should give nnz(L) = O(N log N): check
  // the constant stays small versus the natural (banded) ordering's
  // O(N^{1.5}).
  const index_t k = 24;
  sparse::SymmetricCsc a = sparse::grid2d(k, k);
  const nnz_t natural = fill_under(a, sparse::Permutation(a.n()));
  const nnz_t nd = fill_under(a, nested_dissection_grid2d(k, k));
  EXPECT_LT(nd, 3 * natural / 4);
  // Asymptotics: ND fill (O(N log N)) must grow strictly slower than the
  // banded natural ordering's O(N^{3/2}).
  const index_t k2 = 48;
  sparse::SymmetricCsc a2 = sparse::grid2d(k2, k2);
  const nnz_t natural2 = fill_under(a2, sparse::Permutation(a2.n()));
  const nnz_t nd2 = fill_under(a2, nested_dissection_grid2d(k2, k2));
  const double nd_growth = static_cast<double>(nd2) / static_cast<double>(nd);
  const double nat_growth =
      static_cast<double>(natural2) / static_cast<double>(natural);
  EXPECT_LT(nd_growth, 0.8 * nat_growth);
}

TEST(Multilevel, SeparatorIsValidOnLargeGraphs) {
  Rng rng(12);
  for (int which = 0; which < 2; ++which) {
    sparse::SymmetricCsc a = which == 0
                                 ? sparse::grid2d(40, 40)
                                 : sparse::jittered_mesh2d(35, 35, rng);
    sparse::Graph g = sparse::Graph::from_symmetric(a);
    Separator s = multilevel_vertex_separator(g);
    EXPECT_EQ(static_cast<index_t>(s.left.size() + s.right.size() +
                                   s.sep.size()),
              g.n());
    // Sides are balanced and genuinely separated.
    EXPECT_GT(s.left.size(), static_cast<std::size_t>(g.n()) / 5);
    EXPECT_GT(s.right.size(), static_cast<std::size_t>(g.n()) / 5);
    std::vector<int> side(static_cast<std::size_t>(g.n()), -1);
    for (index_t v : s.left) side[static_cast<std::size_t>(v)] = 0;
    for (index_t v : s.right) side[static_cast<std::size_t>(v)] = 1;
    for (index_t v : s.left) {
      for (index_t u : g.neighbors(v)) {
        EXPECT_NE(side[static_cast<std::size_t>(u)], 1);
      }
    }
    // A multilevel separator of a planar-ish graph stays O(sqrt n)-sized.
    EXPECT_LT(s.sep.size(), static_cast<std::size_t>(g.n()) / 8);
  }
}

TEST(Multilevel, ImprovesFillOnIrregularMesh) {
  Rng rng(13);
  sparse::SymmetricCsc a0 = sparse::jittered_mesh2d(50, 50, rng);
  std::vector<index_t> sh(static_cast<std::size_t>(a0.n()));
  std::iota(sh.begin(), sh.end(), index_t{0});
  rng.shuffle(sh);
  sparse::SymmetricCsc a =
      sparse::permute_symmetric(a0, sparse::Permutation(sh));
  NdOptions without;
  without.multilevel = false;
  NdOptions with;
  with.multilevel = true;
  const nnz_t f0 = fill_under(a, nested_dissection(a, without));
  const nnz_t f1 = fill_under(a, nested_dissection(a, with));
  // The best-of-both policy must never lose by more than noise, and on
  // irregular meshes it should win.
  EXPECT_LE(f1, f0);
}

TEST(NestedDissection, HandlesDisconnectedGraphs) {
  // Two disjoint grids in one matrix.
  sparse::Triplets t(18, 18);
  auto add_grid = [&t](index_t base) {
    for (index_t i = 0; i < 9; ++i) t.add(base + i, base + i, 5.0);
    for (index_t y = 0; y < 3; ++y) {
      for (index_t x = 0; x < 3; ++x) {
        const index_t v = base + y * 3 + x;
        if (x + 1 < 3) t.add(v + 1, v, -1.0);
        if (y + 1 < 3) t.add(v + 3, v, -1.0);
      }
    }
  };
  add_grid(0);
  add_grid(9);
  sparse::SymmetricCsc a = sparse::SymmetricCsc::from_triplets(t);
  EXPECT_EQ(nested_dissection(a).n(), 18);
  EXPECT_EQ(rcm(a).n(), 18);
  EXPECT_EQ(minimum_degree(a).n(), 18);
}

}  // namespace
}  // namespace sparts::ordering
