// Parallel multifrontal factorization must reproduce the sequential
// factor; redistribution must route every entry correctly and cost a
// fraction of the solve (the paper's §4 claim).
#include <gtest/gtest.h>

#include <vector>

#include "mapping/subtree_to_subcube.hpp"
#include "numeric/multifrontal.hpp"
#include "ordering/nested_dissection.hpp"
#include "parfact/parfact.hpp"
#include "partrisolve/partrisolve.hpp"
#include "partrisolve/dist_factor.hpp"
#include "redist/redist.hpp"
#include "sparse/generators.hpp"
#include "sparse/permutation.hpp"
#include "symbolic/supernodes.hpp"
#include "symbolic/symbolic.hpp"
#include "trisolve/trisolve.hpp"
#include "simpar/machine.hpp"

namespace sparts {
namespace {

simpar::Machine make_machine(index_t p) {
  simpar::Machine::Config cfg;
  cfg.nprocs = p;
  cfg.cost = simpar::CostModel::t3d();
  cfg.topology = simpar::TopologyKind::hypercube;
  return simpar::Machine(cfg);
}

struct ProblemSetup {
  sparse::SymmetricCsc a;
  symbolic::SupernodePartition part;
  numeric::SupernodalFactor seq;
};

ProblemSetup make_problem(index_t k, bool three_d = false) {
  sparse::SymmetricCsc a = sparse::permute_symmetric(
      three_d ? sparse::grid3d(k, k, k) : sparse::grid2d(k, k),
      three_d ? ordering::nested_dissection_grid3d(k, k, k)
              : ordering::nested_dissection_grid2d(k, k));
  const symbolic::SymbolicFactor sym = symbolic::symbolic_cholesky(a);
  symbolic::SupernodePartition part = symbolic::fundamental_supernodes(sym);
  numeric::SupernodalFactor seq = numeric::multifrontal_cholesky(a, part);
  return ProblemSetup{std::move(a), std::move(part), std::move(seq)};
}

class ParfactTest
    : public ::testing::TestWithParam<std::pair<index_t, index_t>> {};

TEST_P(ParfactTest, MatchesSequentialFactor) {
  const auto [p, b2d] = GetParam();
  ProblemSetup su = make_problem(13);
  const mapping::SubcubeMapping map = mapping::subtree_to_subcube(
      su.part, p, mapping::factor_work_weights(su.part));

  simpar::Machine machine = make_machine(p);
  numeric::SupernodalFactor par;
  parfact::Options opt;
  opt.block_2d = b2d;
  auto report =
      parfact::parallel_multifrontal(machine, su.a, su.part, map, par, opt);
  EXPECT_GT(report.time(), 0.0);

  for (index_t s = 0; s < su.part.num_supernodes(); ++s) {
    auto ref = su.seq.block(s);
    auto got = par.block(s);
    ASSERT_EQ(ref.size(), got.size());
    const index_t ns = su.part.height(s);
    const index_t t = su.part.width(s);
    for (index_t k = 0; k < t; ++k) {
      for (index_t i = k; i < ns; ++i) {  // above-diagonal entries unused
        EXPECT_NEAR(ref[static_cast<std::size_t>(k * ns + i)],
                    got[static_cast<std::size_t>(k * ns + i)], 1e-9)
            << "supernode " << s << " entry (" << i << ", " << k << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ParfactTest,
                         ::testing::Values(std::pair<index_t, index_t>{1, 8},
                                           std::pair<index_t, index_t>{2, 4},
                                           std::pair<index_t, index_t>{4, 4},
                                           std::pair<index_t, index_t>{8, 2},
                                           std::pair<index_t, index_t>{8, 3},
                                           std::pair<index_t, index_t>{16,
                                                                       4}));

TEST(Parfact, AmalgamatedPartitionMatchesSequential) {
  // The distributed factorization must handle relaxed supernodes (whose
  // trapezoids carry explicit zeros) identically to the sequential code.
  sparse::SymmetricCsc a = sparse::permute_symmetric(
      sparse::grid2d(15, 15), ordering::nested_dissection_grid2d(15, 15));
  const symbolic::SymbolicFactor sym = symbolic::symbolic_cholesky(a);
  symbolic::SupernodePartition part = symbolic::fundamental_supernodes(sym);
  part = symbolic::amalgamate(sym, part, 16, 8);
  const numeric::SupernodalFactor seq =
      numeric::multifrontal_cholesky(a, part);

  const index_t p = 8;
  const mapping::SubcubeMapping map = mapping::subtree_to_subcube(
      part, p, mapping::factor_work_weights(part));
  simpar::Machine machine = make_machine(p);
  numeric::SupernodalFactor par;
  parfact::parallel_multifrontal(machine, a, part, map, par);
  for (index_t s = 0; s < part.num_supernodes(); ++s) {
    auto rb = seq.block(s);
    auto gb = par.block(s);
    const index_t ns = part.height(s);
    for (index_t k = 0; k < part.width(s); ++k) {
      for (index_t i = k; i < ns; ++i) {
        EXPECT_NEAR(rb[static_cast<std::size_t>(k * ns + i)],
                    gb[static_cast<std::size_t>(k * ns + i)], 1e-9);
      }
    }
  }
}

TEST(Redist, BlockSizeCombinations) {
  // Every (2-D block, 1-D block) combination must route correctly,
  // including non-divisible and mismatched sizes.
  ProblemSetup su = make_problem(11);
  const mapping::SubcubeMapping map =
      mapping::subtree_to_subcube(su.part, 8);
  for (index_t b2 : {3, 8, 16}) {
    for (index_t b1 : {1, 5, 8}) {
      redist::Options opt;
      opt.block_2d = b2;
      opt.block_1d = b1;
      partrisolve::DistributedFactor df;
      simpar::Machine machine = make_machine(8);
      // Throws on any misrouted entry.
      redist::redistribute_factor(machine, su.seq, map, opt, &df);
      const auto direct =
          partrisolve::DistributedFactor::pack_from(su.seq, map, b1);
      for (index_t s = 0; s < su.part.num_supernodes(); ++s) {
        const auto& g = map.group[static_cast<std::size_t>(s)];
        for (index_t r = 0; r < g.count; ++r) {
          EXPECT_EQ(df.local_block(g.world(r), s),
                    direct.local_block(g.world(r), s))
              << "b2=" << b2 << " b1=" << b1 << " s=" << s;
        }
      }
    }
  }
}

TEST(Parfact, Grid3dFactorThenSolveEndToEnd) {
  ProblemSetup su = make_problem(6, /*three_d=*/true);
  const index_t p = 8;
  const mapping::SubcubeMapping fmap = mapping::subtree_to_subcube(
      su.part, p, mapping::factor_work_weights(su.part));

  simpar::Machine machine = make_machine(p);
  numeric::SupernodalFactor par;
  parfact::parallel_multifrontal(machine, su.a, su.part, fmap, par);

  // Solve with the parallel-produced factor.
  const index_t n = su.a.n();
  const index_t m = 2;
  Rng rng(21);
  std::vector<real_t> rhs = sparse::random_rhs(n, m, rng);
  const mapping::SubcubeMapping smap =
      mapping::subtree_to_subcube(su.part, p);
  partrisolve::DistributedTrisolver solver(par, smap, {});
  std::vector<real_t> x(static_cast<std::size_t>(n * m), 0.0);
  simpar::Machine machine2 = make_machine(p);
  solver.solve(machine2, rhs, x, m);
  EXPECT_LT(trisolve::relative_residual(su.a, x, rhs, m), 1e-9);
}

TEST(Parfact, SpeedupAtPaperScale) {
  ProblemSetup su = make_problem(63);
  double t1 = 0.0, t16 = 0.0;
  for (index_t p : {1, 16}) {
    const mapping::SubcubeMapping map = mapping::subtree_to_subcube(
        su.part, p, mapping::factor_work_weights(su.part));
    simpar::Machine machine = make_machine(p);
    numeric::SupernodalFactor par;
    auto report =
        parfact::parallel_multifrontal(machine, su.a, su.part, map, par);
    (p == 1 ? t1 : t16) = report.time();
  }
  EXPECT_GT(t1 / t16, 4.0) << "t1=" << t1 << " t16=" << t16;
}

class RedistTest : public ::testing::TestWithParam<index_t> {};

TEST_P(RedistTest, RoutesEveryEntry) {
  const index_t p = GetParam();
  ProblemSetup su = make_problem(13);
  const mapping::SubcubeMapping map = mapping::subtree_to_subcube(su.part, p);
  simpar::Machine machine = make_machine(p);
  // redistribute_factor throws on any misrouted entry.
  auto report = redist::redistribute_factor(machine, su.seq, map);
  if (p > 1) {
    EXPECT_GT(report.time(), 0.0);
    EXPECT_GT(report.stats.total_messages(), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Powers, RedistTest,
                         ::testing::Values<index_t>(1, 2, 4, 8, 16));

TEST(Redist, CostIsFractionOfSolve) {
  // Paper §4/§5: on the T3D the redistribution takes at most 0.9x (avg
  // ~0.5x) the single-RHS solve time.
  ProblemSetup su = make_problem(63);
  const index_t p = 16;
  const mapping::SubcubeMapping map = mapping::subtree_to_subcube(su.part, p);

  simpar::Machine machine = make_machine(p);
  auto redist_report = redist::redistribute_factor(machine, su.seq, map);

  partrisolve::DistributedTrisolver solver(su.seq, map, {});
  const index_t n = su.a.n();
  Rng rng(2);
  std::vector<real_t> rhs = sparse::random_rhs(n, 1, rng);
  std::vector<real_t> x(static_cast<std::size_t>(n), 0.0);
  simpar::Machine machine2 = make_machine(p);
  auto [fw, bw] = solver.solve(machine2, rhs, x, 1);

  const double ratio = redist_report.time() / (fw.time() + bw.time());
  EXPECT_LT(ratio, 1.5) << "redistribution should not dwarf the solve";
  EXPECT_GT(ratio, 0.0);
}

}  // namespace
}  // namespace sparts
