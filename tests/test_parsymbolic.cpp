// Distributed symbolic factorization: exact agreement with the sequential
// analysis across processor counts and matrix families.
#include <gtest/gtest.h>

#include <vector>

#include "ordering/nested_dissection.hpp"
#include "parfact/parsymbolic.hpp"
#include "sparse/generators.hpp"
#include "sparse/permutation.hpp"
#include "symbolic/symbolic.hpp"
#include "simpar/machine.hpp"

namespace sparts {
namespace {

simpar::Machine make_machine(index_t p) {
  simpar::Machine::Config cfg;
  cfg.nprocs = p;
  cfg.cost = simpar::CostModel::t3d();
  cfg.topology = simpar::TopologyKind::hypercube;
  return simpar::Machine(cfg);
}

void expect_equal(const symbolic::SymbolicFactor& a,
                  const symbolic::SymbolicFactor& b) {
  ASSERT_EQ(a.n, b.n);
  ASSERT_EQ(a.nnz(), b.nnz());
  for (index_t j = 0; j < a.n; ++j) {
    auto ra = a.col_rows(j);
    auto rb = b.col_rows(j);
    ASSERT_EQ(ra.size(), rb.size()) << "column " << j;
    for (std::size_t k = 0; k < ra.size(); ++k) {
      EXPECT_EQ(ra[k], rb[k]) << "column " << j << " slot " << k;
    }
  }
}

class ParSymbolicTest : public ::testing::TestWithParam<index_t> {};

TEST_P(ParSymbolicTest, MatchesSequentialOnGrid) {
  const index_t p = GetParam();
  const sparse::SymmetricCsc a = sparse::permute_symmetric(
      sparse::grid2d(17, 15), ordering::nested_dissection_grid2d(17, 15));
  const symbolic::SymbolicFactor ref = symbolic::symbolic_cholesky(a);
  simpar::Machine machine = make_machine(p);
  const auto result = parfact::parallel_symbolic(machine, a);
  expect_equal(result.symbolic, ref);
  EXPECT_GT(result.time(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Powers, ParSymbolicTest,
                         ::testing::Values<index_t>(1, 2, 4, 8, 16, 32));

TEST(ParSymbolic, MatchesSequentialOnRandomMatrices) {
  Rng rng(81);
  for (int trial = 0; trial < 4; ++trial) {
    sparse::SymmetricCsc a0 = sparse::random_spd(70, 3, rng);
    sparse::SymmetricCsc a =
        sparse::permute_symmetric(a0, ordering::nested_dissection(a0));
    const symbolic::SymbolicFactor ref = symbolic::symbolic_cholesky(a);
    simpar::Machine machine = make_machine(8);
    const auto result = parfact::parallel_symbolic(machine, a);
    expect_equal(result.symbolic, ref);
  }
}

TEST(ParSymbolic, ScalesOnLargeProblem) {
  const sparse::SymmetricCsc a = sparse::permute_symmetric(
      sparse::grid3d(12, 12, 12),
      ordering::nested_dissection_grid3d(12, 12, 12));
  double t1 = 0.0, t16 = 0.0;
  for (index_t p : {1, 16}) {
    simpar::Machine machine = make_machine(p);
    const auto result = parfact::parallel_symbolic(machine, a);
    (p == 1 ? t1 : t16) = result.time();
  }
  EXPECT_GT(t1 / t16, 2.0) << "t1=" << t1 << " t16=" << t16;
}

}  // namespace
}  // namespace sparts
