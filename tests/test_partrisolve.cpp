// The distributed triangular solvers must reproduce the sequential solves
// exactly (up to roundoff) for every combination of processor count, block
// size, pipelining variant, right-hand-side count, and matrix family.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "dense/cholesky.hpp"
#include "mapping/subtree_to_subcube.hpp"
#include "numeric/multifrontal.hpp"
#include "ordering/nested_dissection.hpp"
#include "partrisolve/dense_trisolve.hpp"
#include "partrisolve/dist_factor.hpp"
#include "partrisolve/partrisolve.hpp"
#include "sparse/generators.hpp"
#include "sparse/permutation.hpp"
#include "trisolve/trisolve.hpp"
#include "simpar/machine.hpp"

namespace sparts {
namespace {

using partrisolve::DistributedTrisolver;
using partrisolve::Options;
using partrisolve::Pipelining;

struct Problem {
  sparse::SymmetricCsc a;
  numeric::SupernodalFactor l;
};

Problem make_grid_problem(index_t k, bool three_d = false) {
  sparse::SymmetricCsc a0 =
      three_d ? sparse::grid3d(k, k, k) : sparse::grid2d(k, k);
  const sparse::Permutation perm =
      three_d ? ordering::nested_dissection_grid3d(k, k, k)
              : ordering::nested_dissection_grid2d(k, k);
  sparse::SymmetricCsc a = sparse::permute_symmetric(a0, perm);
  numeric::SupernodalFactor l = numeric::multifrontal_cholesky(a);
  return Problem{std::move(a), std::move(l)};
}

simpar::Machine make_machine(index_t p) {
  simpar::Machine::Config cfg;
  cfg.nprocs = p;
  cfg.cost = simpar::CostModel::t3d();
  cfg.topology = simpar::TopologyKind::hypercube;
  return simpar::Machine(cfg);
}

// (p, block size, nrhs, pipelining variant)
using Combo = std::tuple<index_t, index_t, index_t, Pipelining>;

class ParTrisolveTest : public ::testing::TestWithParam<Combo> {};

TEST_P(ParTrisolveTest, MatchesSequentialSolveOnGrid2d) {
  const auto [p, b, m, variant] = GetParam();
  Problem prob = make_grid_problem(13);
  const index_t n = prob.a.n();

  Rng rng(7);
  std::vector<real_t> rhs = sparse::random_rhs(n, m, rng);

  // Sequential reference.
  std::vector<real_t> ref = rhs;
  trisolve::full_solve(prob.l, ref.data(), m);

  // Distributed solve.
  const mapping::SubcubeMapping map =
      mapping::subtree_to_subcube(prob.l.partition(), p);
  Options opt;
  opt.block_size = b;
  opt.pipelining = variant;
  DistributedTrisolver solver(prob.l, map, opt);
  simpar::Machine machine = make_machine(p);
  std::vector<real_t> x(static_cast<std::size_t>(n * m), 0.0);
  auto [fw, bw] = solver.solve(machine, rhs, x, m);

  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x[i], ref[i], 1e-9) << "entry " << i;
  }
  EXPECT_GT(fw.time(), 0.0);
  EXPECT_GT(bw.time(), 0.0);
  EXPECT_LT(trisolve::relative_residual(prob.a, x, rhs, m), 1e-9);
}

constexpr auto kCol = Pipelining::column_priority;
constexpr auto kRow = Pipelining::row_priority;
constexpr auto kFan = Pipelining::fan_out;

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParTrisolveTest,
    ::testing::Values(Combo{1, 8, 1, kCol}, Combo{2, 8, 1, kCol},
                      Combo{4, 8, 1, kCol}, Combo{8, 8, 1, kCol},
                      Combo{16, 8, 1, kCol}, Combo{4, 1, 1, kCol},
                      Combo{4, 3, 1, kCol}, Combo{8, 2, 3, kCol},
                      Combo{4, 8, 5, kCol}, Combo{8, 8, 30, kCol},
                      Combo{2, 8, 1, kRow}, Combo{4, 4, 2, kRow},
                      Combo{8, 8, 1, kRow}, Combo{16, 2, 3, kRow},
                      Combo{2, 8, 1, kFan}, Combo{4, 4, 2, kFan},
                      Combo{8, 8, 1, kFan}, Combo{16, 3, 4, kFan}));

class RandomizedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomizedSweep, RandomSpdSolvesMatchSequential) {
  // Property: for arbitrary SPD matrices under general nested dissection,
  // the distributed solve equals the sequential solve for random p, b, m.
  Rng rng(GetParam());
  const index_t n = 40 + static_cast<index_t>(rng.next_below(80));
  sparse::SymmetricCsc a0 = sparse::random_spd(n, 3, rng);
  sparse::SymmetricCsc a =
      sparse::permute_symmetric(a0, ordering::nested_dissection(a0));
  numeric::SupernodalFactor l = numeric::multifrontal_cholesky(a);

  const index_t p = index_t{1} << rng.next_below(5);       // 1..16
  const index_t b = 1 + static_cast<index_t>(rng.next_below(8));
  const index_t m = 1 + static_cast<index_t>(rng.next_below(4));
  const Pipelining variant = static_cast<Pipelining>(rng.next_below(3));

  std::vector<real_t> rhs = sparse::random_rhs(n, m, rng);
  std::vector<real_t> ref = rhs;
  trisolve::full_solve(l, ref.data(), m);

  const mapping::SubcubeMapping map =
      mapping::subtree_to_subcube(l.partition(), p);
  Options opt;
  opt.block_size = b;
  opt.pipelining = variant;
  DistributedTrisolver solver(l, map, opt);
  simpar::Machine machine = make_machine(p);
  std::vector<real_t> x(static_cast<std::size_t>(n * m), 0.0);
  solver.solve(machine, rhs, x, m);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x[i], ref[i], 1e-8)
        << "seed=" << GetParam() << " p=" << p << " b=" << b << " m=" << m;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedSweep,
                         ::testing::Range<std::uint64_t>(1000, 1020));

class RandomizedStrictSweep : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RandomizedStrictSweep, StrictStorageMatchesSequential) {
  // Same property as RandomizedSweep, but reading L from rank-local
  // packed storage (the redistribution product) instead of the shared
  // factor.
  Rng rng(GetParam());
  const index_t n = 40 + static_cast<index_t>(rng.next_below(60));
  sparse::SymmetricCsc a0 = sparse::random_spd(n, 3, rng);
  sparse::SymmetricCsc a =
      sparse::permute_symmetric(a0, ordering::nested_dissection(a0));
  numeric::SupernodalFactor l = numeric::multifrontal_cholesky(a);

  const index_t p = index_t{1} << rng.next_below(4);  // 1..8
  const index_t m = 1 + static_cast<index_t>(rng.next_below(3));
  Options opt;
  opt.block_size = 1 + static_cast<index_t>(rng.next_below(8));

  std::vector<real_t> rhs = sparse::random_rhs(n, m, rng);
  std::vector<real_t> ref = rhs;
  trisolve::full_solve(l, ref.data(), m);

  const mapping::SubcubeMapping map =
      mapping::subtree_to_subcube(l.partition(), p);
  const auto df = partrisolve::DistributedFactor::pack_from(
      l, map, opt.block_size);
  DistributedTrisolver solver(l, &df, map, opt);
  simpar::Machine machine = make_machine(p);
  std::vector<real_t> x(static_cast<std::size_t>(n * m), 0.0);
  solver.solve(machine, rhs, x, m);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x[i], ref[i], 1e-8) << "seed=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedStrictSweep,
                         ::testing::Range<std::uint64_t>(2000, 2010));

TEST(ParTrisolve, Grid3dMatchesSequential) {
  Problem prob = make_grid_problem(7, /*three_d=*/true);
  const index_t n = prob.a.n();
  const index_t m = 2;
  Rng rng(11);
  std::vector<real_t> rhs = sparse::random_rhs(n, m, rng);
  std::vector<real_t> ref = rhs;
  trisolve::full_solve(prob.l, ref.data(), m);

  const mapping::SubcubeMapping map =
      mapping::subtree_to_subcube(prob.l.partition(), 8);
  DistributedTrisolver solver(prob.l, map, Options{});
  simpar::Machine machine = make_machine(8);
  std::vector<real_t> x(static_cast<std::size_t>(n * m), 0.0);
  solver.solve(machine, rhs, x, m);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x[i], ref[i], 1e-9);
  }
}

TEST(ParTrisolve, SpeedupIncreasesWithProcessors) {
  // BCSSTK15-scale 2-D problem: big enough that communication does not
  // dominate at p = 16 under the T3D cost model.
  Problem prob = make_grid_problem(63);
  const index_t n = prob.a.n();
  const index_t m = 1;
  Rng rng(3);
  std::vector<real_t> rhs = sparse::random_rhs(n, m, rng);

  double t1 = 0.0;
  double t16 = 0.0;
  for (index_t p : {1, 16}) {
    const mapping::SubcubeMapping map =
        mapping::subtree_to_subcube(prob.l.partition(), p);
    DistributedTrisolver solver(prob.l, map, Options{});
    simpar::Machine machine = make_machine(p);
    std::vector<real_t> x(static_cast<std::size_t>(n * m), 0.0);
    auto [fw, bw] = solver.solve(machine, rhs, x, m);
    const double t = fw.time() + bw.time();
    if (p == 1) t1 = t;
    if (p == 16) t16 = t;
  }
  EXPECT_GT(t1 / t16, 2.0) << "t1=" << t1 << " t16=" << t16;
}

TEST(ParTrisolve, BackwardPipelineIsNotSerialized) {
  // Regression test: the backward partial-sum chains must overlap in a
  // wavefront (paper Fig. 4).  If the chain for column K only starts after
  // column K+1 fully completes, the backward phase costs ~q*t/b hops
  // instead of ~q + t/b and is an order of magnitude slower than forward
  // at large q.  Guard: backward within a small factor of forward.
  Problem prob = make_grid_problem(9, /*three_d=*/true);
  const index_t p = 16;
  const mapping::SubcubeMapping map =
      mapping::subtree_to_subcube(prob.l.partition(), p);
  DistributedTrisolver solver(prob.l, map, Options{});
  const index_t n = prob.a.n();
  Rng rng(77);
  std::vector<real_t> rhs = sparse::random_rhs(n, 1, rng);
  std::vector<real_t> x(static_cast<std::size_t>(n), 0.0);
  simpar::Machine machine = make_machine(p);
  auto [fw, bw] = solver.solve(machine, rhs, x, 1);
  EXPECT_LT(bw.time(), 3.0 * fw.time())
      << "fw=" << fw.time() << " bw=" << bw.time();
}

TEST(ParTrisolve, MultipleRhsRaisesFlopRate) {
  Problem prob = make_grid_problem(21);
  const index_t n = prob.a.n();
  Rng rng(5);

  auto mflops_for = [&](index_t m) {
    std::vector<real_t> rhs = sparse::random_rhs(n, m, rng);
    const mapping::SubcubeMapping map =
        mapping::subtree_to_subcube(prob.l.partition(), 8);
    DistributedTrisolver solver(prob.l, map, Options{});
    simpar::Machine machine = make_machine(8);
    std::vector<real_t> x(static_cast<std::size_t>(n * m), 0.0);
    auto [fw, bw] = solver.solve(machine, rhs, x, m);
    const double flops = static_cast<double>(prob.l.solve_flops(m));
    return flops / (fw.time() + bw.time()) / 1e6;
  };
  const double r1 = mflops_for(1);
  const double r10 = mflops_for(10);
  EXPECT_GT(r10, 1.5 * r1);
}

TEST(DenseParallelForward, MatchesSequential) {
  const index_t n = 96;
  const index_t m = 2;
  Rng rng(13);
  dense::Matrix a(n, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = j; i < n; ++i) {
      a(i, j) = i == j ? static_cast<real_t>(n) : rng.uniform(-1.0, 1.0);
    }
  }
  std::vector<real_t> rhs = sparse::random_rhs(n, m, rng);

  // Sequential reference via the dense kernels.
  dense::Matrix bmat(n, m);
  for (index_t c = 0; c < m; ++c) {
    for (index_t i = 0; i < n; ++i) bmat(i, c) = rhs[c * n + i];
  }
  dense::Matrix ref = dense::solve_lower(a, bmat);

  for (index_t p : {1, 4, 8}) {
    std::vector<real_t> x = rhs;
    simpar::Machine machine = make_machine(p);
    partrisolve::dense_parallel_forward(machine, a, x, m, 4);
    for (index_t c = 0; c < m; ++c) {
      for (index_t i = 0; i < n; ++i) {
        EXPECT_NEAR(x[c * n + i], ref(i, c), 1e-9);
      }
    }
  }
}

TEST(DenseParallelForward, ScalesAtPaperSize) {
  // A triangular system the size of the paper's top-level separators:
  // comfortably large enough that pipelining wins under T3D costs.
  const index_t n = 1024;
  const index_t m = 4;
  Rng rng(13);
  dense::Matrix a(n, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = j; i < n; ++i) {
      a(i, j) = i == j ? static_cast<real_t>(n) : rng.uniform(-1.0, 1.0);
    }
  }
  std::vector<real_t> rhs = sparse::random_rhs(n, m, rng);
  double t1 = 0.0, t8 = 0.0;
  for (index_t p : {1, 8}) {
    std::vector<real_t> x = rhs;
    simpar::Machine machine = make_machine(p);
    auto stats = partrisolve::dense_parallel_forward(machine, a, x, m, 16);
    (p == 1 ? t1 : t8) = stats.parallel_time();
  }
  EXPECT_GT(t1 / t8, 2.0) << "t1=" << t1 << " t8=" << t8;
}

}  // namespace
}  // namespace sparts
