// Collectives: correctness of the results plus exact agreement with the
// textbook hypercube cost formulas under the unit cost model.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "simpar/collectives.hpp"
#include "simpar/machine.hpp"

namespace sparts::simpar {
namespace {

Machine::Config unit_config(index_t p) {
  Machine::Config cfg;
  cfg.nprocs = p;
  cfg.cost = CostModel::unit_comm();
  cfg.topology = TopologyKind::fully_connected;
  return cfg;
}

class CollectivesTest : public ::testing::TestWithParam<index_t> {};

TEST_P(CollectivesTest, BroadcastDeliversToAll) {
  const index_t q = GetParam();
  Machine m(unit_config(q));
  m.run([q](Proc& p) {
    Group g{0, q};
    std::vector<real_t> data;
    if (p.rank() == 0) data = {1.0, 2.0, 3.0};
    broadcast(p, g, data, 100);
    ASSERT_EQ(data.size(), 3u);
    EXPECT_DOUBLE_EQ(data[0], 1.0);
    EXPECT_DOUBLE_EQ(data[2], 3.0);
  });
}

TEST_P(CollectivesTest, BroadcastCostIsLogQ) {
  const index_t q = GetParam();
  if (q == 1) return;
  Machine m(unit_config(q));
  const index_t words = 16;
  auto stats = m.run([q, words](Proc& p) {
    Group g{0, q};
    std::vector<real_t> data;
    if (p.rank() == 0) data.assign(static_cast<std::size_t>(words), 1.0);
    broadcast(p, g, data, 100);
  });
  const double logq = std::log2(static_cast<double>(q));
  // Binomial-tree broadcast: the last leaf receives after log q sequential
  // hops of (t_s + m t_w) each.
  EXPECT_DOUBLE_EQ(stats.parallel_time(),
                   logq * (1.0 + static_cast<double>(words)));
}

TEST_P(CollectivesTest, ReduceSumsEverything) {
  const index_t q = GetParam();
  Machine m(unit_config(q));
  m.run([q](Proc& p) {
    Group g{0, q};
    std::vector<real_t> data{static_cast<real_t>(p.rank() + 1), 1.0};
    reduce_sum(p, g, data, 50);
    if (p.rank() == 0) {
      EXPECT_DOUBLE_EQ(data[0],
                       static_cast<real_t>(q * (q + 1) / 2));
      EXPECT_DOUBLE_EQ(data[1], static_cast<real_t>(q));
    }
  });
}

TEST_P(CollectivesTest, AllReduceEveryoneHasSum) {
  const index_t q = GetParam();
  Machine m(unit_config(q));
  m.run([q](Proc& p) {
    Group g{0, q};
    std::vector<real_t> data{1.0};
    allreduce_sum(p, g, data, 10);
    EXPECT_DOUBLE_EQ(data[0], static_cast<real_t>(q));
  });
}

TEST_P(CollectivesTest, BarrierSynchronizes) {
  const index_t q = GetParam();
  Machine::Config cfg = unit_config(q);
  Machine m(cfg);
  auto stats = m.run([q](Proc& p) {
    Group g{0, q};
    // Rank q-1 is slow; everyone must leave the barrier at >= its entry.
    if (p.rank() == q - 1) p.elapse(1000.0);
    barrier(p, g, 20);
    EXPECT_GE(p.now(), 1000.0);
  });
  EXPECT_GE(stats.parallel_time(), 1000.0);
}

TEST_P(CollectivesTest, AllToAllPersonalizedRoutesCorrectly) {
  const index_t q = GetParam();
  Machine m(unit_config(q));
  m.run([q](Proc& p) {
    Group g{0, q};
    const index_t me = p.rank();
    std::vector<std::vector<real_t>> outgoing(static_cast<std::size_t>(q));
    for (index_t r = 0; r < q; ++r) {
      // Message content encodes (source, destination).
      outgoing[static_cast<std::size_t>(r)] = {
          static_cast<real_t>(me * 1000 + r)};
    }
    auto incoming = all_to_all_personalized(p, g, std::move(outgoing), 200);
    ASSERT_EQ(static_cast<index_t>(incoming.size()), q);
    for (index_t r = 0; r < q; ++r) {
      ASSERT_EQ(incoming[static_cast<std::size_t>(r)].size(), 1u);
      EXPECT_DOUBLE_EQ(incoming[static_cast<std::size_t>(r)][0],
                       static_cast<real_t>(r * 1000 + me));
    }
  });
}

TEST_P(CollectivesTest, GatherCollectsAtRoot) {
  const index_t q = GetParam();
  Machine m(unit_config(q));
  m.run([q](Proc& p) {
    Group g{0, q};
    std::vector<real_t> mine(static_cast<std::size_t>(p.rank() + 1),
                             static_cast<real_t>(p.rank()));
    auto all = gather(p, g, std::move(mine), 300);
    if (p.rank() == 0) {
      ASSERT_EQ(static_cast<index_t>(all.size()), q);
      for (index_t r = 0; r < q; ++r) {
        ASSERT_EQ(static_cast<index_t>(all[static_cast<std::size_t>(r)].size()),
                  r + 1);
        EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(r)][0],
                         static_cast<real_t>(r));
      }
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST_P(CollectivesTest, BroadcastFromArbitraryRoot) {
  const index_t q = GetParam();
  Machine m(unit_config(q));
  m.run([q](Proc& p) {
    Group g{0, q};
    for (index_t root = 0; root < q; ++root) {
      std::vector<real_t> data;
      if (p.rank() == root) data = {static_cast<real_t>(root), 7.0};
      broadcast_from(p, g, root, data, 400 + static_cast<int>(root));
      ASSERT_EQ(data.size(), 2u);
      EXPECT_DOUBLE_EQ(data[0], static_cast<real_t>(root));
    }
  });
}

TEST_P(CollectivesTest, AllGatherEveryoneGetsEverything) {
  const index_t q = GetParam();
  Machine m(unit_config(q));
  m.run([q](Proc& p) {
    Group g{0, q};
    std::vector<real_t> mine(static_cast<std::size_t>(p.rank() % 3 + 1),
                             static_cast<real_t>(p.rank()));
    auto all = allgather(p, g, std::move(mine), 500);
    ASSERT_EQ(static_cast<index_t>(all.size()), q);
    for (index_t r = 0; r < q; ++r) {
      ASSERT_EQ(static_cast<index_t>(all[static_cast<std::size_t>(r)].size()),
                r % 3 + 1);
      EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(r)][0],
                       static_cast<real_t>(r));
    }
  });
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, CollectivesTest,
                         ::testing::Values<index_t>(1, 2, 4, 8, 16, 32));

TEST_P(CollectivesTest, ReduceSumToArbitraryRoot) {
  const index_t q = GetParam();
  Machine m(unit_config(q));
  m.run([q](Proc& p) {
    Group g{0, q};
    for (index_t root = 0; root < std::min<index_t>(q, 4); ++root) {
      std::vector<real_t> data{static_cast<real_t>(p.rank() + 1)};
      reduce_sum_to(p, g, root, data, 700 + static_cast<int>(root));
      if (p.rank() == root) {
        EXPECT_DOUBLE_EQ(data[0], static_cast<real_t>(q * (q + 1) / 2));
      }
    }
  });
}

TEST(CollectivesStrided, GroupWithStrideWorks) {
  // The grid columns of a 2-D processor grid are strided groups.
  Machine m(unit_config(8));
  m.run([](Proc& p) {
    if (p.rank() % 2 != 0) return;  // ranks {0, 2, 4, 6}
    Group g{0, 4, 2};
    EXPECT_TRUE(g.contains(p.rank()));
    EXPECT_FALSE(g.contains(1));
    std::vector<real_t> data{1.0};
    allreduce_sum(p, g, data, 600);
    EXPECT_DOUBLE_EQ(data[0], 4.0);
    // broadcast_from with a strided group and non-zero root.
    std::vector<real_t> bc;
    if (p.rank() == 4) bc = {42.0};  // local rank 2
    broadcast_from(p, g, 2, bc, 610);
    ASSERT_EQ(bc.size(), 1u);
    EXPECT_DOUBLE_EQ(bc[0], 42.0);
  });
}

TEST(CollectivesCost, AllGatherRingSteps) {
  // Ring all-gather: q-1 rounds; each rank sends one message per round.
  constexpr index_t q = 8;
  Machine m(unit_config(q));
  auto stats = m.run([](Proc& p) {
    Group g{0, q};
    std::vector<real_t> mine{static_cast<real_t>(p.rank())};
    (void)allgather(p, g, std::move(mine), 0);
  });
  EXPECT_EQ(stats.total_messages(), q * (q - 1));
}

TEST(CollectivesSubgroup, WorksOnNonZeroBase) {
  // A subcube occupying ranks [4, 8) of an 8-processor machine.
  Machine m(unit_config(8));
  m.run([](Proc& p) {
    if (p.rank() < 4) return;
    Group g{4, 4};
    std::vector<real_t> data{1.0};
    allreduce_sum(p, g, data, 0);
    EXPECT_DOUBLE_EQ(data[0], 4.0);
  });
}

TEST(CollectivesCost, AllToAllHypercubeVolume) {
  // Hypercube pairwise all-to-all with per-pair payload of w words moves
  // q/2 * w words per rank per round over log q rounds (plus headers).
  constexpr index_t q = 8;
  constexpr index_t w = 32;
  Machine m(unit_config(q));
  auto stats = m.run([](Proc& p) {
    Group g{0, q};
    std::vector<std::vector<real_t>> outgoing(q);
    for (auto& o : outgoing) o.assign(w, 1.0);
    (void)all_to_all_personalized(p, g, std::move(outgoing), 0);
  });
  // Each rank sends log q = 3 messages.
  EXPECT_EQ(stats.total_messages(), q * 3);
  // Each message carries q/2 packets of w words (+ 3 header words each).
  const nnz_t expected_words_per_msg = (q / 2) * (w + 3);
  EXPECT_EQ(stats.total_words(), q * 3 * expected_words_per_msg);
}

}  // namespace
}  // namespace sparts::simpar
