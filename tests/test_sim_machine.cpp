// Unit tests of the simulated machine: clock arithmetic, message timing,
// determinism, any-source matching, deadlock detection.
#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "simpar/machine.hpp"

namespace sparts::simpar {
namespace {

Machine::Config unit_config(index_t p) {
  Machine::Config cfg;
  cfg.nprocs = p;
  cfg.cost = CostModel::unit_comm();  // t_s = t_w = 1, t_h = 0, flops free
  cfg.topology = TopologyKind::fully_connected;
  return cfg;
}

TEST(SimMachine, SingleProcComputeAdvancesClock) {
  Machine::Config cfg;
  cfg.nprocs = 1;
  cfg.cost = CostModel::t3d();
  Machine m(cfg);
  auto stats = m.run([](Proc& p) { p.compute(1000.0, FlopKind::blas3); });
  EXPECT_DOUBLE_EQ(stats.procs[0].clock, 1000.0 * cfg.cost.t_c_blas3);
  EXPECT_EQ(stats.procs[0].flops, 1000);
}

TEST(SimMachine, PingPongTiming) {
  // With t_s = t_w = 1 and a 1-word message, a send occupies 2 time units
  // and arrives 2 units after it starts.
  Machine m(unit_config(2));
  auto stats = m.run([](Proc& p) {
    if (p.rank() == 0) {
      const real_t v = 42.0;
      p.send_value(1, 7, v);
      const real_t r = p.recv_value<real_t>(1, 8);
      EXPECT_DOUBLE_EQ(r, 43.0);
    } else {
      const real_t v = p.recv_value<real_t>(0, 7);
      const real_t reply = v + 1.0;
      p.send_value(0, 8, reply);
    }
  });
  // Rank 0: send ends at 2.  Rank 1: receives at 2, sends until 4.
  // Reply arrives at rank 0 at 2 + 2 = 4.
  EXPECT_DOUBLE_EQ(stats.procs[0].clock, 4.0);
  EXPECT_DOUBLE_EQ(stats.procs[1].clock, 4.0);
  EXPECT_EQ(stats.total_messages(), 2);
}

TEST(SimMachine, HopLatencyCharged) {
  Machine::Config cfg = unit_config(4);
  cfg.cost.t_h = 10.0;
  cfg.topology = TopologyKind::hypercube;
  Machine m(cfg);
  auto stats = m.run([](Proc& p) {
    if (p.rank() == 0) {
      const real_t v = 1.0;
      p.send_value(3, 0, v);  // 0 -> 3 is 2 hops on a 4-cube
    } else if (p.rank() == 3) {
      (void)p.recv_value<real_t>(0, 0);
    }
  });
  // Arrival = 0 + (t_s + t_w) + 2 * t_h = 2 + 20.
  EXPECT_DOUBLE_EQ(stats.procs[3].clock, 22.0);
}

TEST(SimMachine, ReceiverClockIsMaxOfLocalAndArrival) {
  Machine m(unit_config(2));
  auto stats = m.run([](Proc& p) {
    if (p.rank() == 0) {
      const real_t v = 5.0;
      p.send_value(1, 0, v);  // arrives at t = 2
    } else {
      p.compute(0.0, FlopKind::blas1);
      p.elapse(100.0);  // local work until t = 100
      (void)p.recv_value<real_t>(0, 0);
      EXPECT_DOUBLE_EQ(p.now(), 100.0);  // message waited in the mailbox
    }
  });
  EXPECT_DOUBLE_EQ(stats.procs[1].clock, 100.0);
  EXPECT_DOUBLE_EQ(stats.procs[1].idle_time, 0.0);
}

TEST(SimMachine, IdleTimeAccountedWhenWaiting) {
  Machine m(unit_config(2));
  auto stats = m.run([](Proc& p) {
    if (p.rank() == 0) {
      p.elapse(50.0);
      const real_t v = 1.0;
      p.send_value(1, 0, v);
    } else {
      (void)p.recv_value<real_t>(0, 0);  // waits from 0 to 52
    }
  });
  EXPECT_DOUBLE_EQ(stats.procs[1].idle_time, 52.0);
  EXPECT_DOUBLE_EQ(stats.procs[1].clock, 52.0);
}

TEST(SimMachine, AnySourceTakesEarliestArrival) {
  // Rank 2 receives from ANY: rank 1's message is sent later in wall order
  // but arrives earlier; the simulator must pick by arrival time.
  Machine m(unit_config(3));
  auto stats = m.run([](Proc& p) {
    if (p.rank() == 0) {
      p.elapse(10.0);
      const real_t v = 100.0;
      p.send_value(2, 0, v);  // arrives at 12
    } else if (p.rank() == 1) {
      p.elapse(3.0);
      const real_t v = 200.0;
      p.send_value(2, 0, v);  // arrives at 5
    } else {
      const real_t first = p.recv_value<real_t>(kAnySource, 0);
      const real_t second = p.recv_value<real_t>(kAnySource, 0);
      EXPECT_DOUBLE_EQ(first, 200.0);
      EXPECT_DOUBLE_EQ(second, 100.0);
    }
  });
  EXPECT_DOUBLE_EQ(stats.procs[2].clock, 12.0);
}

TEST(SimMachine, DeterministicAcrossRuns) {
  auto run_once = [] {
    Machine m(unit_config(8));
    return m.run([](Proc& p) {
      // Ring: everyone sends to the next rank, receives from previous,
      // with rank-dependent compute mixed in.
      p.compute(static_cast<double>(p.rank()) * 100.0, FlopKind::blas1);
      const real_t v = static_cast<real_t>(p.rank());
      p.send_value((p.rank() + 1) % p.nprocs(), 0, v);
      (void)p.recv_value<real_t>((p.rank() + p.nprocs() - 1) % p.nprocs(), 0);
    });
  };
  auto a = run_once();
  auto b = run_once();
  ASSERT_EQ(a.procs.size(), b.procs.size());
  for (std::size_t i = 0; i < a.procs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.procs[i].clock, b.procs[i].clock);
    EXPECT_EQ(a.procs[i].messages_sent, b.procs[i].messages_sent);
  }
}

TEST(SimMachine, DeadlockDetected) {
  Machine m(unit_config(2));
  EXPECT_THROW(m.run([](Proc& p) {
    // Both ranks wait for a message that never comes.
    (void)p.recv(1 - p.rank(), 0);
  }),
               DeadlockError);
}

TEST(SimMachine, UserExceptionPropagates) {
  Machine m(unit_config(2));
  EXPECT_THROW(m.run([](Proc& p) {
    if (p.rank() == 0) throw InvalidArgument("boom");
    (void)p.recv(0, 0);  // would deadlock, but the root cause wins
  }),
               InvalidArgument);
}

TEST(SimMachine, SelfSendWorks) {
  Machine m(unit_config(1));
  auto stats = m.run([](Proc& p) {
    const real_t v = 7.0;
    p.send_value(0, 0, v);
    EXPECT_DOUBLE_EQ(p.recv_value<real_t>(0, 0), 7.0);
  });
  EXPECT_DOUBLE_EQ(stats.procs[0].clock, 2.0);
}

TEST(SimMachine, ManyProcessorsScale) {
  Machine m(unit_config(256));
  auto stats = m.run([](Proc& p) {
    if (p.rank() > 0) {
      const real_t v = 1.0;
      p.send_value(0, 0, v);
    } else {
      real_t sum = 0.0;
      for (index_t i = 1; i < p.nprocs(); ++i) {
        sum += p.recv_value<real_t>(kAnySource, 0);
      }
      EXPECT_DOUBLE_EQ(sum, 255.0);
    }
  });
  EXPECT_EQ(stats.total_messages(), 255);
}

TEST(SimMachine, TagsKeepStreamsSeparate) {
  Machine m(unit_config(2));
  m.run([](Proc& p) {
    if (p.rank() == 0) {
      const real_t a = 1.0, b = 2.0;
      p.send_value(1, 5, a);
      p.send_value(1, 9, b);
    } else {
      // Receive in the opposite tag order.
      EXPECT_DOUBLE_EQ(p.recv_value<real_t>(0, 9), 2.0);
      EXPECT_DOUBLE_EQ(p.recv_value<real_t>(0, 5), 1.0);
    }
  });
}

TEST(SimMachine, EfficiencyComputation) {
  Machine::Config cfg;
  cfg.nprocs = 2;
  cfg.cost = CostModel::zero_comm();
  Machine m(cfg);
  auto stats = m.run([](Proc& p) {
    if (p.rank() == 0) p.compute(1000.0, FlopKind::blas1);
    // rank 1 does nothing: efficiency should be 0.5.
  });
  EXPECT_NEAR(stats.efficiency(), 0.5, 1e-12);
}

TEST(Topology, HopCounts) {
  Topology full(TopologyKind::fully_connected, 16);
  EXPECT_EQ(full.hops(3, 3), 0);
  EXPECT_EQ(full.hops(0, 15), 1);

  Topology cube(TopologyKind::hypercube, 16);
  EXPECT_EQ(cube.hops(0, 15), 4);   // 0b0000 -> 0b1111
  EXPECT_EQ(cube.hops(5, 4), 1);    // one bit differs
  EXPECT_EQ(cube.hops(10, 10), 0);

  Topology ring(TopologyKind::ring, 10);
  EXPECT_EQ(ring.hops(0, 1), 1);
  EXPECT_EQ(ring.hops(0, 9), 1);    // wraps
  EXPECT_EQ(ring.hops(0, 5), 5);
  EXPECT_EQ(ring.hops(2, 8), 4);
}

TEST(Topology, HypercubeRequiresPowerOfTwo) {
  EXPECT_THROW(Topology(TopologyKind::hypercube, 12), Error);
  EXPECT_NO_THROW(Topology(TopologyKind::hypercube, 16));
}

TEST(CostModel, PanelFlopInterpolatesBlas2ToBlas3) {
  const CostModel c = CostModel::t3d();
  EXPECT_DOUBLE_EQ(c.panel_flop(1), c.t_c_blas2);
  EXPECT_LT(c.panel_flop(10), c.panel_flop(2));
  EXPECT_GT(c.panel_flop(1000), c.t_c_blas3);
  EXPECT_NEAR(c.panel_flop(1000000), c.t_c_blas3, 1e-12);
}

TEST(CostModel, SendOccupancyAndLatency) {
  CostModel c;
  c.t_s = 10.0;
  c.t_w = 2.0;
  c.t_h = 3.0;
  EXPECT_DOUBLE_EQ(c.send_occupancy(5), 20.0);
  EXPECT_DOUBLE_EQ(c.network_latency(4), 12.0);
}

TEST(SimMachine, MachineIsReusableAcrossRuns) {
  Machine m(unit_config(4));
  for (int run = 0; run < 3; ++run) {
    auto stats = m.run([](Proc& p) {
      if (p.rank() == 0) {
        const real_t v = 1.0;
        p.send_value(1, 0, v);
      } else if (p.rank() == 1) {
        (void)p.recv_value<real_t>(0, 0);
      }
    });
    EXPECT_EQ(stats.total_messages(), 1);
  }
}

TEST(SimMachine, RingTopologyChargesDistance) {
  Machine::Config cfg = unit_config(8);
  cfg.topology = TopologyKind::ring;
  cfg.cost.t_h = 5.0;
  Machine m(cfg);
  auto stats = m.run([](Proc& p) {
    if (p.rank() == 0) {
      const real_t v = 1.0;
      p.send_value(4, 0, v);  // 4 hops on an 8-ring
    } else if (p.rank() == 4) {
      (void)p.recv_value<real_t>(0, 0);
    }
  });
  // arrival = (t_s + t_w) + 4 * t_h = 2 + 20.
  EXPECT_DOUBLE_EQ(stats.procs[4].clock, 22.0);
}

TEST(SimMachine, RejectsBadDestinations) {
  Machine m(unit_config(2));
  EXPECT_THROW(m.run([](Proc& p) {
    if (p.rank() == 0) {
      const real_t v = 1.0;
      p.send_value(5, 0, v);  // out of range
    }
  }),
               Error);
  EXPECT_THROW(m.run([](Proc& p) {
    if (p.rank() == 0) (void)p.recv(7, 0);  // out of range source
  }),
               Error);
}

TEST(SimMachine, RejectsNegativeCompute) {
  Machine m(unit_config(1));
  EXPECT_THROW(m.run([](Proc& p) { p.compute(-1.0); }), Error);
}

TEST(SimMachine, TypedRecvValidatesPayloadShape) {
  Machine m(unit_config(2));
  EXPECT_THROW(m.run([](Proc& p) {
    if (p.rank() == 0) {
      const std::byte odd[3] = {};
      p.send(1, 0, odd);
    } else {
      (void)p.recv_values<real_t>(0, 0);  // 3 bytes is not a double array
    }
  }),
               Error);
}

}  // namespace
}  // namespace sparts::simpar
