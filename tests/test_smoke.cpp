// End-to-end smoke test: order, factor, solve, check the residual.
#include <gtest/gtest.h>

#include "numeric/multifrontal.hpp"
#include "numeric/simplicial.hpp"
#include "ordering/nested_dissection.hpp"
#include "sparse/generators.hpp"
#include "sparse/permutation.hpp"
#include "trisolve/trisolve.hpp"

namespace sparts {
namespace {

TEST(Smoke, Grid2dEndToEnd) {
  const sparse::SymmetricCsc a0 = sparse::grid2d(15, 15);
  const sparse::Permutation perm = ordering::nested_dissection_grid2d(15, 15);
  const sparse::SymmetricCsc a = sparse::permute_symmetric(a0, perm);

  numeric::FactorizationStats stats;
  const numeric::SupernodalFactor l = numeric::multifrontal_cholesky(a, &stats);
  EXPECT_GT(stats.flops, 0);

  const index_t n = a.n();
  const index_t m = 3;
  Rng rng(42);
  std::vector<real_t> b = sparse::random_rhs(n, m, rng);
  std::vector<real_t> x = b;
  trisolve::full_solve(l, x.data(), m);
  EXPECT_LT(trisolve::relative_residual(a, x, b, m), 1e-10);
}

TEST(Smoke, SimplicialMatchesMultifrontal) {
  const sparse::SymmetricCsc a = sparse::grid2d(9, 7);
  const symbolic::SymbolicFactor sym = symbolic::symbolic_cholesky(a);
  const numeric::CscFactor ref = numeric::simplicial_cholesky(a, sym);
  const numeric::SupernodalFactor l = numeric::multifrontal_cholesky(a);
  for (index_t j = 0; j < a.n(); ++j) {
    for (index_t i = j; i < a.n(); ++i) {
      EXPECT_NEAR(ref.at(i, j), l.at(i, j), 1e-12)
          << "mismatch at (" << i << ", " << j << ")";
    }
  }
}

}  // namespace
}  // namespace sparts
