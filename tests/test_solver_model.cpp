// The high-level solver facade and the analytical models.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "model/model.hpp"
#include "solver/condest.hpp"
#include "solver/report.hpp"
#include "solver/sparse_solver.hpp"
#include "sparse/generators.hpp"
#include "trisolve/trisolve.hpp"

namespace sparts {
namespace {

class SolverOrderingTest
    : public ::testing::TestWithParam<solver::OrderingMethod> {};

TEST_P(SolverOrderingTest, EndToEndResidual) {
  const sparse::SymmetricCsc a = sparse::grid2d(14, 12);
  solver::Options opt;
  opt.ordering = GetParam();
  const solver::SparseSolver s = solver::SparseSolver::factorize(a, opt);
  EXPECT_GT(s.info().factor_nnz, a.nnz_lower());
  EXPECT_GT(s.info().num_supernodes, 0);

  const index_t n = a.n(), m = 4;
  Rng rng(3);
  std::vector<real_t> b = sparse::random_rhs(n, m, rng);
  std::vector<real_t> x = s.solve(b, m);
  EXPECT_LT(trisolve::relative_residual(a, x, b, m), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Orderings, SolverOrderingTest,
    ::testing::Values(solver::OrderingMethod::natural,
                      solver::OrderingMethod::nested_dissection,
                      solver::OrderingMethod::minimum_degree,
                      solver::OrderingMethod::rcm));

TEST(Solver, AmalgamationOptionStillSolves) {
  const sparse::SymmetricCsc a = sparse::grid3d(5, 5, 4);
  solver::Options opt;
  opt.amalgamation_max_width = 16;
  opt.amalgamation_relax_zeros = 8;
  const solver::SparseSolver s = solver::SparseSolver::factorize(a, opt);
  const index_t n = a.n();
  Rng rng(4);
  std::vector<real_t> b = sparse::random_rhs(n, 1, rng);
  std::vector<real_t> x = s.solve(b, 1);
  EXPECT_LT(trisolve::relative_residual(a, x, b, 1), 1e-9);
}

TEST(Solver, NestedDissectionBeatsNaturalFill) {
  const sparse::SymmetricCsc a = sparse::grid2d(20, 20);
  solver::Options nat;
  nat.ordering = solver::OrderingMethod::natural;
  solver::Options nd;
  nd.ordering = solver::OrderingMethod::nested_dissection;
  const auto s_nat = solver::SparseSolver::factorize(a, nat);
  const auto s_nd = solver::SparseSolver::factorize(a, nd);
  EXPECT_LT(s_nd.info().factor_nnz, s_nat.info().factor_nnz);
}

TEST(ParallelSolver, FullPipelineResidualAndTimings) {
  // BCSSTK15-like scale so factorization dominates, as in the paper.
  const sparse::SymmetricCsc a = sparse::grid2d(63, 63, 9);
  const index_t n = a.n(), m = 1;
  Rng rng(5);
  std::vector<real_t> b = sparse::random_rhs(n, m, rng);
  auto result = solver::parallel_solve(a, b, m, 8);
  EXPECT_LT(trisolve::relative_residual(a, result.x, b, m), 1e-9);
  EXPECT_GT(result.factor_time, 0.0);
  EXPECT_GT(result.redist_time, 0.0);
  EXPECT_GT(result.forward_time, 0.0);
  EXPECT_GT(result.backward_time, 0.0);
  // Paper headline: solve is a small fraction of factorization.
  EXPECT_LT(result.solve_time(), result.factor_time);
}

TEST(ParallelSolver, FusedRedistributionBitIdentical) {
  // Pipeline fusion moves the 2-D -> 1-D conversion inside the forward
  // sweep; the exchanged values and the solve must be bit-identical to
  // the barrier-phase version, with the redistribution phase time folded
  // into the forward phase.
  const sparse::SymmetricCsc a = sparse::grid2d(23, 21);
  Rng rng(83);
  const std::vector<real_t> b = sparse::random_rhs(a.n(), 2, rng);
  solver::Options unfused;
  solver::Options fused;
  fused.fuse_redistribution = true;
  const auto r0 = solver::parallel_solve(a, b, 2, 8, unfused);
  const auto r1 = solver::parallel_solve(a, b, 2, 8, fused);
  EXPECT_EQ(r0.x, r1.x);
  EXPECT_GT(r0.redist_time, 0.0);
  EXPECT_EQ(r1.redist_time, 0.0);
  EXPECT_GT(r1.forward_time, 0.0);
  // Fused forward carries the redistribution traffic on top of the solve,
  // so it cannot be faster than the pure forward phase alone.
  EXPECT_GE(r1.forward_time, r0.forward_time);
  // ...and stays in the neighborhood of the two separate phases (the
  // overlap win shows on matrices with deep shared supernodes; on this
  // small grid the pipelined waits can shift either way, so only guard
  // against a gross regression).
  EXPECT_LT(r1.forward_time, 1.25 * (r0.redist_time + r0.forward_time));
  EXPECT_DOUBLE_EQ(r1.backward_time, r0.backward_time);
}

TEST(Report, ContainsKeySections) {
  const sparse::SymmetricCsc a = sparse::grid2d(12, 12);
  const solver::SparseSolver s = solver::SparseSolver::factorize(a);
  solver::ReportOptions opt;
  opt.max_p = 16;
  const std::string report = solver::analysis_report(s, opt);
  EXPECT_NE(report.find("nnz(L)"), std::string::npos);
  EXPECT_NE(report.find("supernodes"), std::string::npos);
  EXPECT_NE(report.find("load imbalance"), std::string::npos);
  EXPECT_NE(report.find("projected speedup"), std::string::npos) << report;
  EXPECT_NE(report.find("width histogram"), std::string::npos);
}

TEST(ParallelSolver, DeterministicAcrossRuns) {
  // The whole distributed pipeline (factorization, redistribution,
  // solves) must be bit-identical run to run: timings AND values.
  const sparse::SymmetricCsc a = sparse::grid2d(19, 17);
  Rng rng(71);
  const std::vector<real_t> b = sparse::random_rhs(a.n(), 2, rng);
  const auto r1 = solver::parallel_solve(a, b, 2, 8);
  const auto r2 = solver::parallel_solve(a, b, 2, 8);
  EXPECT_EQ(r1.x, r2.x);
  EXPECT_DOUBLE_EQ(r1.factor_time, r2.factor_time);
  EXPECT_DOUBLE_EQ(r1.redist_time, r2.redist_time);
  EXPECT_DOUBLE_EQ(r1.forward_time, r2.forward_time);
  EXPECT_DOUBLE_EQ(r1.backward_time, r2.backward_time);
}

TEST(CondEst, IdentityIsWellConditioned) {
  sparse::Triplets t(20, 20);
  for (index_t i = 0; i < 20; ++i) t.add(i, i, 1.0);
  sparse::SymmetricCsc a = sparse::SymmetricCsc::from_triplets(t);
  const solver::SparseSolver s = solver::SparseSolver::factorize(a);
  const auto est = solver::estimate_condition(s);
  EXPECT_NEAR(est.condition(), 1.0, 1e-10);
}

TEST(CondEst, DiagonalMatrixExactCondition) {
  // diag(1, ..., 1, eps): cond_1 = 1/eps exactly, and Hager finds it.
  const real_t eps = 1e-4;
  sparse::Triplets t(10, 10);
  for (index_t i = 0; i < 9; ++i) t.add(i, i, 1.0);
  t.add(9, 9, eps);
  sparse::SymmetricCsc a = sparse::SymmetricCsc::from_triplets(t);
  solver::Options opt;
  opt.ordering = solver::OrderingMethod::natural;
  const solver::SparseSolver s = solver::SparseSolver::factorize(a, opt);
  const auto est = solver::estimate_condition(s);
  EXPECT_NEAR(est.condition(), 1.0 / eps, 1.0);
}

TEST(CondEst, ShiftControlsLaplacianConditioning) {
  // The generator's diagonal shift bounds cond(A) ~ O(1/shift); the
  // estimator must track it.
  auto cond_of = [](real_t shift) {
    const sparse::SymmetricCsc a = sparse::grid2d(14, 14, 5, shift);
    const solver::SparseSolver s = solver::SparseSolver::factorize(a);
    return solver::estimate_condition(s).condition();
  };
  const real_t mild = cond_of(1e-1);
  const real_t harsh = cond_of(1e-4);
  EXPECT_GT(mild, 1.0);
  EXPECT_GT(harsh, 10.0 * mild);
}

TEST(Model, TermsAndWork) {
  using model::GraphClass;
  EXPECT_GT(model::solve_work(GraphClass::two_dimensional, 1000.0), 1000.0);
  EXPECT_NEAR(model::solve_work(GraphClass::three_dimensional, 4096.0),
              std::pow(4096.0, 4.0 / 3.0), 1e-6);
  auto terms = model::runtime_terms(GraphClass::two_dimensional, 1.0e4, 16.0);
  EXPECT_NEAR(terms[1], 100.0, 1e-9);
  EXPECT_NEAR(terms[2], 16.0, 1e-9);
}

TEST(Model, FitRecoversExactCoefficients) {
  using model::GraphClass;
  const std::array<double, 3> truth{2.5e-7, 3.0e-6, 8.0e-5};
  std::vector<model::Sample> samples;
  for (double n : {1.0e3, 4.0e3, 1.6e4, 6.4e4}) {
    for (double p : {1.0, 4.0, 16.0, 64.0}) {
      samples.push_back(
          {n, p, model::runtime(GraphClass::two_dimensional, n, p, truth)});
    }
  }
  auto fit = model::fit_runtime_model(GraphClass::two_dimensional, samples);
  EXPECT_GT(fit.r_squared, 0.999999);
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(fit.coeff[static_cast<std::size_t>(i)],
                truth[static_cast<std::size_t>(i)],
                1e-6 * truth[static_cast<std::size_t>(i)] + 1e-12);
  }
}

TEST(Model, OverheadGrowsWithP) {
  using model::GraphClass;
  const std::array<double, 3> c{1e-7, 1e-6, 1e-4};
  const double o4 = model::overhead(GraphClass::three_dimensional, 1e4, 4, c);
  const double o64 =
      model::overhead(GraphClass::three_dimensional, 1e4, 64, c);
  EXPECT_GT(o64, o4);
}

TEST(Model, IsoefficiencyIsQuadratic) {
  EXPECT_DOUBLE_EQ(model::isoefficiency_work(10.0), 100.0);
  EXPECT_DOUBLE_EQ(model::isoefficiency_work(100.0) /
                       model::isoefficiency_work(10.0),
                   100.0);
}

TEST(Model, Figure5TableShape) {
  auto rows = model::figure5_rows();
  ASSERT_EQ(rows.size(), 6u);
  int unscalable = 0;
  for (const auto& r : rows) {
    EXPECT_FALSE(r.matrix_type.empty());
    EXPECT_FALSE(r.overall_iso.empty());
    if (r.solve_iso == "unscalable") ++unscalable;
  }
  // Every 2-D-partitioned solver row is unscalable (the paper's point).
  EXPECT_EQ(unscalable, 3);
}

}  // namespace
}  // namespace sparts
