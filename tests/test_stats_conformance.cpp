// Backend stats conformance: the same deterministic SPMD program —
// point-to-point ring exchange, collectives, compute — must produce
// identical per-rank *event counts* (messages/words sent and received,
// flops) on the simulated backend, the threaded backend, and both
// wrapped in the checked decorator.  Times differ by design (virtual
// cost-model seconds vs wall clock); counts may not.
// Registered under the CTest label `obs`.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "exec/checked_backend.hpp"
#include "exec/collectives.hpp"
#include "exec/task_backend.hpp"
#include "exec/thread_backend.hpp"
#include "simpar/machine.hpp"

namespace sparts {
namespace {

constexpr index_t kProcs = 4;

void conformance_program(exec::Process& proc) {
  const index_t p = proc.nprocs();
  const index_t r = proc.rank();

  proc.compute(100.0 * static_cast<double>(r + 1));

  // Ring exchange with rank-dependent payload sizes.
  std::vector<real_t> ring(static_cast<std::size_t>(r + 1) * 4,
                           static_cast<double>(r));
  proc.send_values<real_t>((r + 1) % p, 10, ring);
  (void)proc.recv_values<real_t>((r + p - 1) % p, 10);

  // Collectives: every wrapper must feed stats identically on both
  // backends (they are layered on the same send/recv, but the checked
  // decorator and the tracer hook them too).
  const exec::Group g{0, p};
  std::vector<real_t> bcast;
  if (r == 0) bcast.assign(32, 1.0);
  exec::broadcast(proc, g, bcast, 100);
  std::vector<real_t> acc(16, static_cast<double>(r));
  exec::reduce_sum(proc, g, acc, 200);
  exec::barrier(proc, g, 300);

  proc.compute(50.0);
}

/// The count fields of one rank (everything except times).
using RankCounts = std::tuple<nnz_t, nnz_t, nnz_t, nnz_t, nnz_t>;

std::vector<RankCounts> counts_of(const exec::RunStats& rs) {
  std::vector<RankCounts> out;
  for (const auto& p : rs.procs) {
    out.emplace_back(p.flops, p.messages_sent, p.words_sent,
                     p.messages_received, p.words_received);
  }
  return out;
}

void expect_same_counts(const exec::RunStats& expected,
                        const exec::RunStats& actual, const char* what) {
  ASSERT_EQ(expected.procs.size(), actual.procs.size()) << what;
  const auto want = counts_of(expected);
  const auto got = counts_of(actual);
  for (std::size_t r = 0; r < want.size(); ++r) {
    EXPECT_EQ(want[r], got[r]) << what << ": rank " << r
                               << " count mismatch (flops, msgs_sent, "
                                  "words_sent, msgs_recv, words_recv)";
  }
}

exec::RunStats run_simulated() {
  simpar::Machine::Config cfg;
  cfg.nprocs = kProcs;
  simpar::Machine m(cfg);
  return m.run(conformance_program);
}

TEST(StatsConformance, ProgramIsClosedOnSimulator) {
  const exec::RunStats rs = run_simulated();
  ASSERT_EQ(rs.procs.size(), static_cast<std::size_t>(kProcs));
  EXPECT_GT(rs.total_messages(), 0);
  // Closed run: every send was matched by a recv somewhere.
  EXPECT_EQ(rs.total_messages_received(), rs.total_messages());
  for (const auto& p : rs.procs) {
    EXPECT_GT(p.flops, 0);
    EXPECT_GT(p.messages_sent, 0);
    EXPECT_GT(p.messages_received, 0);
  }
}

TEST(StatsConformance, ThreadBackendMatchesSimulator) {
  const exec::RunStats sim = run_simulated();

  exec::ThreadBackend::Config cfg;
  cfg.nprocs = kProcs;
  cfg.recv_timeout = 30.0;
  exec::ThreadBackend threads(cfg);
  const exec::RunStats thr = threads.run(conformance_program);

  expect_same_counts(sim, thr, "threads vs sim");
  EXPECT_EQ(thr.total_messages_received(), thr.total_messages());
}

TEST(StatsConformance, TaskBackendMatchesSimulator) {
  // The fiber-per-rank task backend runs the identical SPMD program on a
  // work-stealing worker pool; per-rank event counts must still match the
  // simulator exactly, at any worker count (including fewer workers than
  // ranks — the whole point of the backend).
  const exec::RunStats sim = run_simulated();
  for (const int workers : {1, 2, 8}) {
    exec::TaskBackend::Config cfg;
    cfg.nprocs = kProcs;
    cfg.scheduler.workers = workers;
    exec::TaskBackend tasks(cfg);
    const exec::RunStats rs = tasks.run(conformance_program);
    expect_same_counts(sim, rs, "tasks vs sim");
    EXPECT_EQ(rs.total_messages_received(), rs.total_messages());
    EXPECT_EQ(tasks.last_scheduler_stats().workers, workers);
  }
}

TEST(StatsConformance, CheckedDecoratorIsTransparentOnBothBackends) {
  const exec::RunStats sim = run_simulated();

  {
    simpar::Machine::Config cfg;
    cfg.nprocs = kProcs;
    simpar::Machine inner(cfg);
    exec::CheckedBackend checked(inner);
    const exec::RunStats rs = checked.run(conformance_program);
    expect_same_counts(sim, rs, "checked(sim) vs sim");
    EXPECT_TRUE(checked.report().clean()) << checked.report().summary();
  }
  {
    exec::ThreadBackend::Config cfg;
    cfg.nprocs = kProcs;
    cfg.recv_timeout = 30.0;
    exec::ThreadBackend inner(cfg);
    exec::CheckedBackend checked(inner);
    const exec::RunStats rs = checked.run(conformance_program);
    expect_same_counts(sim, rs, "checked(threads) vs sim");
    EXPECT_TRUE(checked.report().clean()) << checked.report().summary();
  }
}

}  // namespace
}  // namespace sparts
