// Symbolic factorization and supernode detection.
#include <gtest/gtest.h>

#include <set>

#include "numeric/simplicial.hpp"
#include "ordering/nested_dissection.hpp"
#include "sparse/generators.hpp"
#include "sparse/permutation.hpp"
#include "symbolic/supernodes.hpp"
#include "symbolic/symbolic.hpp"

namespace sparts::symbolic {
namespace {

TEST(Symbolic, StructureContainsMatrixAndIsClosed) {
  sparse::SymmetricCsc a = sparse::grid2d(7, 6);
  SymbolicFactor f = symbolic_cholesky(a);
  EXPECT_EQ(f.n, a.n());
  // A's lower entries are in L's structure.
  for (index_t j = 0; j < a.n(); ++j) {
    auto lrows = f.col_rows(j);
    std::set<index_t> lset(lrows.begin(), lrows.end());
    for (index_t i : a.col_rows(j)) {
      EXPECT_TRUE(lset.count(i)) << "(" << i << ", " << j << ")";
    }
  }
  // Fill closure: for i in struct(j) with parent(j) = p <= i, i must be in
  // struct(p) (the fundamental containment property).
  for (index_t j = 0; j < f.n; ++j) {
    const index_t p = f.etree.parent[static_cast<std::size_t>(j)];
    if (p == -1) continue;
    auto prows = f.col_rows(p);
    std::set<index_t> pset(prows.begin(), prows.end());
    for (index_t i : f.col_rows(j)) {
      if (i > j && i != p) {
        EXPECT_TRUE(pset.count(i))
            << "row " << i << " of col " << j << " missing from parent " << p;
      }
    }
  }
}

TEST(Symbolic, TridiagonalHasNoFill) {
  sparse::Triplets t(8, 8);
  for (index_t i = 0; i < 8; ++i) t.add(i, i, 4.0);
  for (index_t i = 0; i + 1 < 8; ++i) t.add(i + 1, i, -1.0);
  sparse::SymmetricCsc a = sparse::SymmetricCsc::from_triplets(t);
  SymbolicFactor f = symbolic_cholesky(a);
  EXPECT_EQ(f.nnz(), a.nnz_lower());
}

TEST(Symbolic, DenseMatrixFullStructure) {
  const index_t n = 6;
  sparse::Triplets t(n, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = j; i < n; ++i) t.add(i, j, i == j ? 10.0 : -0.1);
  }
  sparse::SymmetricCsc a = sparse::SymmetricCsc::from_triplets(t);
  SymbolicFactor f = symbolic_cholesky(a);
  EXPECT_EQ(f.nnz(), n * (n + 1) / 2);
  // One supernode covering everything.
  SupernodePartition p = fundamental_supernodes(f);
  EXPECT_EQ(p.num_supernodes(), 1);
  EXPECT_EQ(p.width(0), n);
}

TEST(Symbolic, SimplicialValuesLiveInsideStructure) {
  sparse::SymmetricCsc a = sparse::permute_symmetric(
      sparse::grid2d(8, 8), ordering::nested_dissection_grid2d(8, 8));
  SymbolicFactor f = symbolic_cholesky(a);
  numeric::CscFactor l = numeric::simplicial_cholesky(a, f);
  // Reconstruct A = L L^T and compare on the stored pattern.
  for (index_t j = 0; j < a.n(); ++j) {
    auto rows = a.col_rows(j);
    auto vals = a.col_values(j);
    for (std::size_t z = 0; z < rows.size(); ++z) {
      const index_t i = rows[z];
      real_t s = 0.0;
      for (index_t k = 0; k <= j; ++k) {
        const real_t lik = i >= k ? l.at(i, k) : 0.0;
        const real_t ljk = j >= k ? l.at(j, k) : 0.0;
        s += lik * ljk;
      }
      EXPECT_NEAR(s, vals[z], 1e-10) << "(" << i << ", " << j << ")";
    }
  }
}

TEST(Supernodes, PartitionInvariants) {
  sparse::SymmetricCsc a = sparse::permute_symmetric(
      sparse::grid2d(9, 9), ordering::nested_dissection_grid2d(9, 9));
  SymbolicFactor f = symbolic_cholesky(a);
  SupernodePartition p = fundamental_supernodes(f);
  p.check_consistent();
  // Every column is covered exactly once.
  EXPECT_EQ(p.n(), a.n());
  // Supernode structure matches the symbolic first column.
  for (index_t s = 0; s < p.num_supernodes(); ++s) {
    auto sym_rows = f.col_rows(p.first_col[static_cast<std::size_t>(s)]);
    auto sup_rows = p.row_indices(s);
    ASSERT_EQ(sym_rows.size(), sup_rows.size());
    for (std::size_t k = 0; k < sym_rows.size(); ++k) {
      EXPECT_EQ(sym_rows[k], sup_rows[k]);
    }
  }
}

TEST(Supernodes, ColumnsWithinSupernodeShareStructure) {
  sparse::SymmetricCsc a = sparse::permute_symmetric(
      sparse::grid2d(10, 10), ordering::nested_dissection_grid2d(10, 10));
  SymbolicFactor f = symbolic_cholesky(a);
  SupernodePartition p = fundamental_supernodes(f);
  for (index_t s = 0; s < p.num_supernodes(); ++s) {
    const index_t j0 = p.first_col[static_cast<std::size_t>(s)];
    for (index_t j = j0 + 1; j < p.first_col[static_cast<std::size_t>(s) + 1];
         ++j) {
      // struct(j) = struct(j-1) \ {j-1}.
      auto prev = f.col_rows(j - 1);
      auto cur = f.col_rows(j);
      ASSERT_EQ(cur.size() + 1, prev.size());
      for (std::size_t k = 0; k < cur.size(); ++k) {
        EXPECT_EQ(cur[k], prev[k + 1]);
      }
    }
  }
}

TEST(Supernodes, AmalgamationReducesCountAndStaysConsistent) {
  sparse::SymmetricCsc a = sparse::permute_symmetric(
      sparse::grid2d(12, 12), ordering::nested_dissection_grid2d(12, 12));
  SymbolicFactor f = symbolic_cholesky(a);
  SupernodePartition p = fundamental_supernodes(f);
  SupernodePartition q = amalgamate(f, p, /*max_width=*/16,
                                    /*relax_zeros=*/8);
  q.check_consistent();
  EXPECT_LT(q.num_supernodes(), p.num_supernodes());
  EXPECT_EQ(q.n(), p.n());
  // Amalgamation can only add storage (explicit zeros), never lose
  // structure.
  EXPECT_GE(q.total_block_entries(), p.total_block_entries());
  // Every symbolic entry is still representable.
  for (index_t j = 0; j < f.n; ++j) {
    const index_t s = q.sup_of_col[static_cast<std::size_t>(j)];
    auto rows = q.row_indices(s);
    std::set<index_t> rset(rows.begin(), rows.end());
    for (index_t i : f.col_rows(j)) {
      EXPECT_TRUE(rset.count(i));
    }
  }
}

TEST(Supernodes, FlopAccountingConsistent) {
  sparse::SymmetricCsc a = sparse::permute_symmetric(
      sparse::grid2d(8, 8), ordering::nested_dissection_grid2d(8, 8));
  SymbolicFactor f = symbolic_cholesky(a);
  SupernodePartition p = fundamental_supernodes(f);
  // Supernodal solve flops (with trapezoid padding) must be at least the
  // sparse count 4*nnz(L) and within a reasonable factor of it.
  nnz_t supernodal = 0;
  for (index_t s = 0; s < p.num_supernodes(); ++s) {
    supernodal += 2 * p.solve_flops(s, 1);
  }
  EXPECT_GE(supernodal, 2 * f.nnz());
  EXPECT_LE(supernodal, 8 * f.nnz());
}

}  // namespace
}  // namespace sparts::symbolic
