// The task-DAG execution core: WaitGroup, TaskGraph, the work-stealing
// scheduler, and the fiber-based TaskBackend behind the Comm contract.
//
// The load-bearing assertions are the bit-identical ones: the TaskBackend
// must solve the paper's problems with exactly the floating-point results
// of the thread backend (same SPMD lowering, same deterministic message
// matching), and the shared-memory task lowerings of factorization /
// trisolve must reproduce their sequential counterparts bit for bit
// (tests live in the parfact/partrisolve suites; here we pin the engine).
#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <vector>

#include "exec/collectives.hpp"
#include "exec/task_backend.hpp"
#include "exec/task_scheduler.hpp"
#include "exec/taskgraph.hpp"
#include "exec/thread_backend.hpp"
#include "exec/waitgroup.hpp"

namespace sparts {
namespace {

TEST(WaitGroup, CountsDownAndIsReusable) {
  exec::WaitGroup wg;
  wg.add(3);
  EXPECT_EQ(wg.pending(), 3);
  wg.done();
  wg.done();
  wg.done();
  wg.wait();  // returns immediately at zero
  wg.add(1);  // reusable after reaching zero
  wg.done();
  wg.wait();
}

TEST(WaitGroup, ReleasesWaiterFromAnotherThread) {
  exec::WaitGroup wg(2);
  exec::TaskScheduler sched({.workers = 2});
  sched.submit([&](const exec::JobContext&) { wg.done(); });
  sched.submit([&](const exec::JobContext&) { wg.done(); });
  wg.wait();
  EXPECT_EQ(wg.pending(), 0);
}

TEST(TaskGraph, TopoScheduleIsDeterministicAndComplete) {
  exec::TaskGraph g;
  const auto a = g.add_task("a");
  const auto b = g.add_task("b");
  const auto c = g.add_task("c");
  const auto d = g.add_task("d");
  g.add_edge(a, c);
  g.add_edge(b, c);
  g.add_edge(c, d);
  g.add_edge(a, c);  // duplicate collapses
  EXPECT_EQ(g.num_edges(), 3);
  const auto order = g.topo_schedule();
  EXPECT_EQ(order, (std::vector<exec::TaskId>{a, b, c, d}));
}

TEST(TaskGraph, AnalyzeComputesCriticalPathAndWidth) {
  // Diamond: a -> {b, c} -> d, unit costs.
  exec::TaskGraph g;
  const auto a = g.add_task("a", {}, exec::TaskKind::panel_factor);
  const auto b = g.add_task("b", {}, exec::TaskKind::update);
  const auto c = g.add_task("c", {}, exec::TaskKind::update);
  const auto d = g.add_task("d", {}, exec::TaskKind::panel_factor);
  g.add_edge(a, b);
  g.add_edge(a, c);
  g.add_edge(b, d);
  g.add_edge(c, d);
  const exec::GraphStats st = g.analyze();
  EXPECT_EQ(st.tasks, 4);
  EXPECT_EQ(st.edges, 4);
  EXPECT_DOUBLE_EQ(st.total_cost, 4.0);
  EXPECT_DOUBLE_EQ(st.critical_path_cost, 3.0);  // a -> b -> d
  EXPECT_EQ(st.depth, 3);
  EXPECT_EQ(st.max_width, 2);
  EXPECT_NEAR(st.avg_parallelism, 4.0 / 3.0, 1e-12);
  EXPECT_EQ(st.count_of(exec::TaskKind::panel_factor), 2);
  EXPECT_EQ(st.count_of(exec::TaskKind::update), 2);
}

TEST(TaskGraph, CycleIsRejected) {
  exec::TaskGraph g;
  const auto a = g.add_task("a");
  const auto b = g.add_task("b");
  g.add_edge(a, b);
  g.add_edge(b, a);
  EXPECT_THROW(g.topo_schedule(), Error);
}

TEST(TaskScheduler, RunGraphRespectsDependencies) {
  // A fork-join over 64 tasks: every task stamps a sequence number; each
  // task's stamp must come after all of its predecessors' stamps.
  exec::TaskGraph g;
  constexpr int kN = 64;
  std::vector<std::atomic<int>> stamp(kN);
  std::atomic<int> next{0};
  std::vector<exec::TaskId> ids;
  for (int i = 0; i < kN; ++i) {
    ids.push_back(g.add_task("t", [&stamp, &next, i] {
      stamp[static_cast<std::size_t>(i)].store(next.fetch_add(1) + 1);
    }));
  }
  // Binary-tree dependencies: child i depends on parent (i-1)/2.
  for (int i = 1; i < kN; ++i) g.add_edge(ids[(i - 1) / 2], ids[i]);
  exec::TaskScheduler sched({.workers = 4});
  sched.run_graph(g);
  for (int i = 1; i < kN; ++i) {
    EXPECT_GT(stamp[static_cast<std::size_t>(i)].load(),
              stamp[static_cast<std::size_t>((i - 1) / 2)].load())
        << "task " << i << " ran before its predecessor";
  }
  EXPECT_EQ(next.load(), kN);
  EXPECT_GE(sched.stats().jobs_run, static_cast<std::int64_t>(kN));
}

TEST(TaskScheduler, RunGraphPropagatesTaskError) {
  exec::TaskGraph g;
  const auto a = g.add_task("boom", [] { throw Error("task failed"); });
  std::atomic<bool> ran{false};
  const auto b = g.add_task("after", [&ran] { ran.store(true); });
  g.add_edge(a, b);
  exec::TaskScheduler sched({.workers = 2});
  EXPECT_THROW(sched.run_graph(g), Error);
  EXPECT_FALSE(ran.load()) << "successor body ran after cancellation";
}

TEST(TaskScheduler, SeededRandomDagShapesDrainOnAllWorkerCounts) {
  // The stress test of the release protocol: random DAGs (random fan-out,
  // random edge density, diamonds and chains alike) must drain exactly
  // once per task on 1..16 workers.  The seed makes failures replayable.
  std::mt19937 rng(20260809);
  for (const int workers : {1, 2, 3, 4, 8, 16}) {
    exec::TaskScheduler sched(
        {.workers = workers, .cluster_size = 4, .spin_sweeps = 2});
    for (int round = 0; round < 4; ++round) {
      const int n = 1 + static_cast<int>(rng() % 200);
      exec::TaskGraph g;
      std::vector<std::atomic<int>> runs(static_cast<std::size_t>(n));
      std::vector<exec::TaskId> ids;
      for (int i = 0; i < n; ++i) {
        ids.push_back(g.add_task(
            "t", [&runs, i] { runs[static_cast<std::size_t>(i)]++; }));
      }
      // Edges only point forward: any random subset stays acyclic.
      for (int i = 1; i < n; ++i) {
        const int fanin = static_cast<int>(rng() % 4);
        for (int e = 0; e < fanin; ++e) {
          g.add_edge(ids[static_cast<std::size_t>(rng() %
                                                  static_cast<unsigned>(i))],
                     ids[static_cast<std::size_t>(i)]);
        }
      }
      sched.run_graph(g);
      for (int i = 0; i < n; ++i) {
        ASSERT_EQ(runs[static_cast<std::size_t>(i)].load(), 1)
            << "workers=" << workers << " round=" << round << " task=" << i;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// TaskBackend: the Comm contract on fibers
// ---------------------------------------------------------------------------

exec::TaskBackend make_tasks(index_t p, int workers = 2) {
  exec::TaskBackend::Config cfg;
  cfg.nprocs = p;
  cfg.scheduler.workers = workers;
  return exec::TaskBackend(cfg);
}

TEST(TaskBackend, RingExchangeCompletesOnFewerWorkersThanRanks) {
  constexpr index_t p = 8;
  exec::TaskBackend backend = make_tasks(p, /*workers=*/2);
  std::vector<index_t> seen(static_cast<std::size_t>(p), -1);
  const exec::RunStats rs = backend.run([&](exec::Process& proc) {
    const index_t r = proc.rank();
    const index_t next = (r + 1) % p;
    proc.send_value<index_t>(next, /*tag=*/7, r);
    seen[static_cast<std::size_t>(r)] =
        proc.recv_value<index_t>((r + p - 1) % p, /*tag=*/7);
  });
  for (index_t r = 0; r < p; ++r) {
    EXPECT_EQ(seen[static_cast<std::size_t>(r)], (r + p - 1) % p);
  }
  EXPECT_EQ(rs.total_messages(), p);
  EXPECT_EQ(rs.total_messages_received(), p);
}

TEST(TaskBackend, CollectivesMatchOnSingleWorker) {
  // One worker, eight fibers: every rank blocks at the broadcast /
  // reduction trees, so progress relies entirely on fiber switching.
  constexpr index_t p = 8;
  exec::TaskBackend backend = make_tasks(p, /*workers=*/1);
  std::vector<real_t> sums(static_cast<std::size_t>(p), 0.0);
  backend.run([&](exec::Process& proc) {
    const exec::Group world{0, proc.nprocs(), 1};
    std::vector<real_t> v{static_cast<real_t>(proc.rank() + 1)};
    exec::reduce_sum_to(proc, world, 0, v, /*tag_base=*/100);
    exec::broadcast_from(proc, world, 0, v, /*tag_base=*/200);
    sums[static_cast<std::size_t>(proc.rank())] = v[0];
  });
  for (index_t r = 0; r < p; ++r) {
    EXPECT_DOUBLE_EQ(sums[static_cast<std::size_t>(r)],
                     static_cast<real_t>(p * (p + 1) / 2));
  }
}

TEST(TaskBackend, AnySourceFanInDrainsEveryMessage) {
  constexpr index_t p = 6;
  exec::TaskBackend backend = make_tasks(p, /*workers=*/3);
  std::atomic<index_t> total{0};
  backend.run([&](exec::Process& proc) {
    if (proc.rank() == 0) {
      for (index_t i = 0; i < p - 1; ++i) {
        total += proc.recv_value<index_t>(exec::kAnySource, /*tag=*/3);
      }
    } else {
      proc.send_value<index_t>(0, /*tag=*/3, proc.rank());
    }
  });
  EXPECT_EQ(total.load(), p * (p - 1) / 2);
}

TEST(TaskBackend, DeadlockIsDetectedWithoutTimeout) {
  // Two ranks each waiting for the other: the exact stall detector must
  // fire (all live fibers blocked), not a timeout.
  exec::TaskBackend backend = make_tasks(2, /*workers=*/2);
  EXPECT_THROW(backend.run([&](exec::Process& proc) {
                 proc.recv(1 - proc.rank(), /*tag=*/1);
               }),
               DeadlockError);
}

TEST(TaskBackend, WaitingOnFinishedPeersIsDeadlock) {
  // Rank 1 exits immediately; rank 0 waits forever on it.
  exec::TaskBackend backend = make_tasks(2, /*workers=*/1);
  EXPECT_THROW(backend.run([&](exec::Process& proc) {
                 if (proc.rank() == 0) proc.recv(1, /*tag=*/9);
               }),
               DeadlockError);
}

TEST(TaskBackend, RankErrorAbortsBlockedPeersAndSurfacesRootCause) {
  constexpr index_t p = 4;
  exec::TaskBackend backend = make_tasks(p, /*workers=*/2);
  try {
    backend.run([&](exec::Process& proc) {
      if (proc.rank() == 2) throw NumericalError("pivot broke");
      proc.recv((proc.rank() + 1) % p, /*tag=*/5);
    });
    FAIL() << "expected NumericalError";
  } catch (const NumericalError& e) {
    EXPECT_NE(std::string(e.what()).find("pivot broke"), std::string::npos);
  }
}

TEST(TaskBackend, TryRecvPollsWithoutBlocking) {
  exec::TaskBackend backend = make_tasks(2, /*workers=*/2);
  backend.run([&](exec::Process& proc) {
    if (proc.rank() == 0) {
      exec::ReceivedMessage msg;
      while (!proc.try_recv(1, /*tag=*/4, &msg)) proc.poll_wait(1e-4);
      EXPECT_EQ(msg.source, 1);
    } else {
      proc.send_value<int>(0, /*tag=*/4, 42);
    }
  });
}

TEST(TaskBackend, StatsCountTheSameTrafficAsThreads) {
  // Same program on ThreadBackend and TaskBackend: event counts (flops,
  // messages, words) must agree exactly; only the clocks may differ.
  constexpr index_t p = 4;
  auto program = [p](exec::Process& proc) {
    const index_t r = proc.rank();
    proc.compute(1000.0, exec::FlopKind::blas3);
    std::vector<real_t> payload(static_cast<std::size_t>(r + 1), 1.0);
    proc.send_values<real_t>((r + 1) % p, /*tag=*/11, payload);
    proc.recv((r + p - 1) % p, /*tag=*/11);
  };
  exec::ThreadBackend::Config tcfg;
  tcfg.nprocs = p;
  exec::ThreadBackend threads(tcfg);
  const exec::RunStats a = threads.run(program);
  exec::TaskBackend backend = make_tasks(p, /*workers=*/2);
  const exec::RunStats b = backend.run(program);
  ASSERT_EQ(a.procs.size(), b.procs.size());
  for (std::size_t r = 0; r < a.procs.size(); ++r) {
    EXPECT_EQ(a.procs[r].flops, b.procs[r].flops) << r;
    EXPECT_EQ(a.procs[r].messages_sent, b.procs[r].messages_sent) << r;
    EXPECT_EQ(a.procs[r].words_sent, b.procs[r].words_sent) << r;
    EXPECT_EQ(a.procs[r].messages_received, b.procs[r].messages_received)
        << r;
  }
}

TEST(TaskBackend, ManyRanksOnEveryWorkerCount) {
  // Seeded all-to-all-ish traffic across 1..16 workers: the scheduler
  // shape must never change the delivered data.
  for (const int workers : {1, 2, 3, 5, 8, 16}) {
    constexpr index_t p = 12;
    exec::TaskBackend backend = make_tasks(p, workers);
    std::vector<index_t> sum(static_cast<std::size_t>(p), 0);
    backend.run([&](exec::Process& proc) {
      const index_t r = proc.rank();
      for (index_t d = 0; d < p; ++d) {
        if (d != r) proc.send_value<index_t>(d, static_cast<int>(100 + r), r);
      }
      index_t acc = 0;
      for (index_t s = 0; s < p; ++s) {
        if (s != r) acc += proc.recv_value<index_t>(s, static_cast<int>(100 + s));
      }
      sum[static_cast<std::size_t>(r)] = acc;
    });
    for (index_t r = 0; r < p; ++r) {
      EXPECT_EQ(sum[static_cast<std::size_t>(r)], p * (p - 1) / 2 - r)
          << "workers=" << workers;
    }
  }
}

}  // namespace
}  // namespace sparts
