// The second-lowering guarantee (see parfact/factor_dag.hpp and
// partrisolve/solve_dag.hpp): factorization and the triangular solves are
// expressed once as supernode task DAGs, and every lowering of those
// graphs — the sequential loop, the SPMD ranks walking the topological
// schedule, and the work-stealing task scheduler — must produce
// bit-identical numbers.  These tests pin that contract:
//
//   * the coarse/forward DAG schedules are exactly 0..nsup-1 (all edges go
//     small -> large id), which is what makes walking the schedule
//     byte-identical to the historical `for s` loops;
//   * taskdag_factor == multifrontal_cholesky bit for bit (values and
//     stats), at every worker count;
//   * taskdag_solve == trisolve::full_solve bit for bit;
//   * parallel_solve(--backend tasks) == parallel_solve(--backend threads)
//     bit for bit on a corpus of matrices and processor counts;
//   * the --backend registry round-trips and rejects junk with a message
//     that enumerates every registered name.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "numeric/multifrontal.hpp"
#include "ordering/nested_dissection.hpp"
#include "parfact/factor_dag.hpp"
#include "partrisolve/solve_dag.hpp"
#include "solver/sparse_solver.hpp"
#include "sparse/generators.hpp"
#include "sparse/permutation.hpp"
#include "symbolic/supernodes.hpp"
#include "symbolic/symbolic.hpp"
#include "trisolve/trisolve.hpp"

namespace sparts {
namespace {

sparse::SymmetricCsc make_family(const std::string& family) {
  Rng rng(271828);
  if (family == "grid2d") return sparse::grid2d(11, 9);
  if (family == "grid3d") return sparse::grid3d(5, 4, 4);
  if (family == "chain") return sparse::grid2d(60, 1);  // path: chain etree
  if (family == "random") return sparse::random_spd(80, 4, rng);
  if (family == "jittered") return sparse::jittered_mesh2d(9, 9, rng);
  if (family == "figure1") return sparse::figure1_matrix();
  throw Error("unknown family " + family);
}

sparse::SymmetricCsc ordered(const std::string& family) {
  sparse::SymmetricCsc a = make_family(family);
  return sparse::permute_symmetric(a, ordering::nested_dissection(a));
}

symbolic::SupernodePartition partition_of(const sparse::SymmetricCsc& a) {
  return symbolic::fundamental_supernodes(symbolic::symbolic_cholesky(a));
}

std::vector<real_t> all_blocks(const numeric::SupernodalFactor& f) {
  std::vector<real_t> v;
  for (index_t s = 0; s < f.num_supernodes(); ++s) {
    const auto b = f.block(s);
    v.insert(v.end(), b.begin(), b.end());
  }
  return v;
}

const char* kFamilies[] = {"grid2d", "grid3d", "chain", "random",
                           "jittered", "figure1"};

TEST(TaskDagLowering, CoarseAndForwardSchedulesAreAscending) {
  // Every edge of the supernode DAG (and of the forward-solve DAG) goes
  // from a smaller id to a larger one, so the deterministic
  // smallest-ready-id-first schedule is exactly 0, 1, ..., nsup-1.  The
  // SPMD loops rely on this to stay byte-identical to the historical
  // ascending-supernode loops.
  for (const char* family : kFamilies) {
    const sparse::SymmetricCsc a = ordered(family);
    const symbolic::SupernodePartition part = partition_of(a);
    const index_t nsup = part.num_supernodes();
    for (const exec::TaskGraph& g : {parfact::build_supernode_dag(part),
                                     partrisolve::build_forward_dag(part)}) {
      const std::vector<exec::TaskId> sched = g.topo_schedule();
      ASSERT_EQ(static_cast<index_t>(sched.size()), nsup) << family;
      for (index_t s = 0; s < nsup; ++s) {
        ASSERT_EQ(sched[static_cast<std::size_t>(s)], s) << family;
      }
    }
  }
}

TEST(TaskDagLowering, TaskFactorMatchesSequentialBitwise) {
  for (const char* family : kFamilies) {
    const sparse::SymmetricCsc a = ordered(family);
    const symbolic::SupernodePartition part = partition_of(a);
    numeric::FactorizationStats seq_stats;
    const numeric::SupernodalFactor seq =
        numeric::multifrontal_cholesky(a, part, &seq_stats);
    for (const int workers : {1, 2, 4, 8}) {
      parfact::TaskFactorReport report;
      const numeric::SupernodalFactor par = parfact::taskdag_factor(
          a, part, {.workers = workers}, &report);
      EXPECT_EQ(all_blocks(seq), all_blocks(par))
          << family << " workers=" << workers;
      // The stats are exact too: same flop count and the same peak front /
      // update-stack high-water marks (taskdag_factor samples them at the
      // same points the sequential loop does).
      EXPECT_EQ(report.stats.flops, seq_stats.flops) << family;
      EXPECT_EQ(report.stats.peak_front_entries, seq_stats.peak_front_entries)
          << family << " workers=" << workers;
      // The update-stack high-water mark depends on execution order (the
      // fine-grained schedule interleaves panel and update tasks
      // differently from the sequential postorder), so it is only pinned
      // to be live whenever the sequential run saw a non-empty stack.
      if (seq_stats.peak_stack_entries > 0) {
        EXPECT_GT(report.stats.peak_stack_entries, 0)
            << family << " workers=" << workers;
      }
      EXPECT_EQ(report.graph.tasks, report.scheduler.jobs_run)
          << family << " workers=" << workers;
    }
  }
}

TEST(TaskDagLowering, TaskSolveMatchesSequentialBitwise) {
  for (const char* family : kFamilies) {
    const sparse::SymmetricCsc a = ordered(family);
    const symbolic::SupernodePartition part = partition_of(a);
    const numeric::SupernodalFactor l =
        numeric::multifrontal_cholesky(a, part);
    for (const index_t m : {index_t{1}, index_t{3}}) {
      Rng rng(42);
      const std::vector<real_t> b = sparse::random_rhs(a.n(), m, rng);
      std::vector<real_t> x_seq = b;
      trisolve::full_solve(l, x_seq.data(), m);
      for (const int workers : {1, 2, 4, 8}) {
        std::vector<real_t> x_par = b;
        partrisolve::TaskSolveReport report;
        partrisolve::taskdag_solve(l, x_par.data(), m, {.workers = workers},
                                   &report);
        EXPECT_EQ(x_seq, x_par) << family << " m=" << m
                                << " workers=" << workers;
        EXPECT_EQ(report.forward.tasks + report.backward.tasks,
                  report.scheduler.jobs_run)
            << family;
      }
    }
  }
}

TEST(TaskDagLowering, ParallelSolveTasksMatchesThreadsBitwise) {
  // The full distributed pipeline: the tasks backend runs the identical
  // SPMD programs (rank fibers instead of rank threads), so x must match
  // the thread backend bit for bit.
  for (const char* family : {"grid2d", "grid3d", "random", "figure1"}) {
    const sparse::SymmetricCsc a = make_family(family);
    const index_t m = 2;
    Rng rng(7);
    const std::vector<real_t> b = sparse::random_rhs(a.n(), m, rng);
    for (const index_t p : {index_t{4}, index_t{8}}) {
      solver::Options threads_opt;
      threads_opt.backend = solver::ExecutionBackend::threads;
      solver::Options tasks_opt;
      tasks_opt.backend = solver::ExecutionBackend::tasks;
      const auto rt = solver::parallel_solve(a, b, m, p, threads_opt);
      const auto rk = solver::parallel_solve(a, b, m, p, tasks_opt);
      EXPECT_EQ(rt.x, rk.x) << family << " p=" << p;
      // DAG shapes are reported for both backends (the SPMD loops lower
      // the same graphs), and only the tasks backend reports scheduler
      // activity.
      EXPECT_EQ(rt.factor_dag.tasks, rk.factor_dag.tasks) << family;
      EXPECT_EQ(rt.forward_dag.edges, rk.forward_dag.edges) << family;
      EXPECT_GT(rk.factor_dag.tasks, 0) << family;
      EXPECT_GT(rk.task_scheduler.jobs_run, 0) << family;
      EXPECT_EQ(rt.task_scheduler.jobs_run, 0) << family;
    }
  }
}

TEST(TaskDagLowering, BackendRegistryRoundTripsAndRejectsJunk) {
  for (const solver::BackendInfo& info : solver::execution_backends()) {
    EXPECT_EQ(solver::parse_execution_backend(info.name), info.backend);
    EXPECT_EQ(solver::execution_backend_info(info.backend).name,
              std::string(info.name));
  }
  EXPECT_NE(solver::execution_backend_names().find("tasks"),
            std::string::npos);
  try {
    solver::parse_execution_backend("bogus");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    // The error enumerates every registered spelling.
    const std::string what = e.what();
    for (const solver::BackendInfo& info : solver::execution_backends()) {
      EXPECT_NE(what.find(info.name), std::string::npos) << info.name;
    }
  }
}

}  // namespace
}  // namespace sparts
