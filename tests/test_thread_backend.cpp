// Stress and correctness tests for exec::ThreadBackend — the backend where
// every rank really is a concurrent std::thread, so these tests exercise
// true interleavings (run them under -DSPARTS_SANITIZE=thread).  Registered
// under the CTest label `real` with a timeout: a mailbox bug here shows up
// as a hang, and the timeout turns that hang into a failure.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "exec/collectives.hpp"
#include "exec/thread_backend.hpp"
#include "mapping/subtree_to_subcube.hpp"
#include "numeric/multifrontal.hpp"
#include "ordering/nested_dissection.hpp"
#include "partrisolve/partrisolve.hpp"
#include "simpar/machine.hpp"
#include "sparse/generators.hpp"
#include "sparse/permutation.hpp"
#include "trisolve/trisolve.hpp"

namespace sparts {
namespace {

exec::ThreadBackend make_backend(index_t p, double timeout = 30.0) {
  exec::ThreadBackend::Config cfg;
  cfg.nprocs = p;
  cfg.recv_timeout = timeout;
  return exec::ThreadBackend(cfg);
}

/// Payload content as a pure function of (src, tag, len): receivers can
/// verify integrity without any side channel.
std::vector<real_t> stamp(index_t src, int tag, index_t len) {
  std::vector<real_t> v(static_cast<std::size_t>(len));
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<real_t>(src) * 1000.0 + static_cast<real_t>(tag) +
           static_cast<real_t>(i) * 0.5;
  }
  return v;
}

TEST(ThreadBackend, PingPongPreservesPayload) {
  exec::ThreadBackend backend = make_backend(2);
  const exec::RunStats stats = backend.run([](exec::Process& proc) {
    if (proc.rank() == 0) {
      proc.send_values<real_t>(1, 7, stamp(0, 7, 64));
      const auto back = proc.recv_values<real_t>(1, 8);
      ASSERT_EQ(back, stamp(1, 8, 32));
    } else {
      const auto got = proc.recv_values<real_t>(0, 7);
      ASSERT_EQ(got, stamp(0, 7, 64));
      proc.send_values<real_t>(0, 8, stamp(1, 8, 32));
    }
  });
  EXPECT_EQ(stats.total_messages(), 2);
  EXPECT_EQ(stats.total_words(), 96);
}

TEST(ThreadBackend, OutOfOrderTagsAreMatchedByTag) {
  // The sender emits tags in descending order; the receiver asks for them
  // ascending.  Tag matching must pick the right queued message each time.
  exec::ThreadBackend backend = make_backend(2);
  backend.run([](exec::Process& proc) {
    constexpr int kTags = 9;
    if (proc.rank() == 0) {
      for (int tag = kTags; tag >= 1; --tag) {
        proc.send_values<real_t>(1, tag, stamp(0, tag, tag));
      }
    } else {
      for (int tag = 1; tag <= kTags; ++tag) {
        const auto got = proc.recv_values<real_t>(0, tag);
        ASSERT_EQ(got, stamp(0, tag, tag));
      }
    }
  });
}

TEST(ThreadBackend, AnySourceFanInSeesEverySenderOnce) {
  for (const index_t p : {2, 4, 8, 16}) {
    exec::ThreadBackend backend = make_backend(p);
    backend.run([p](exec::Process& proc) {
      if (proc.rank() == 0) {
        std::vector<int> seen(static_cast<std::size_t>(p), 0);
        for (index_t i = 1; i < p; ++i) {
          const auto msg = proc.recv(exec::kAnySource, 3);
          ASSERT_GE(msg.source, 1);
          ASSERT_LT(msg.source, p);
          ++seen[static_cast<std::size_t>(msg.source)];
          // Integrity: the payload must belong to the claimed source.
          const auto vals = stamp(msg.source, 3, 16);
          ASSERT_EQ(msg.payload.size(), vals.size() * sizeof(real_t));
          std::vector<real_t> got(vals.size());
          std::memcpy(got.data(), msg.payload.data(), msg.payload.size());
          ASSERT_EQ(got, vals);
        }
        for (index_t r = 1; r < p; ++r) {
          EXPECT_EQ(seen[static_cast<std::size_t>(r)], 1) << "source " << r;
        }
      } else {
        proc.send_values<real_t>(0, 3, stamp(proc.rank(), 3, 16));
      }
    });
  }
}

TEST(ThreadBackend, RandomizedRingExchangeStress) {
  // Several rounds of ring traffic with randomized payload lengths and a
  // shuffled per-round tag schedule on 2..16 threads.  Termination (no
  // deadlock/livelock) is part of the assertion: the CTest timeout fails a
  // hung run.
  for (const index_t p : {2, 3, 4, 8, 16}) {
    exec::ThreadBackend backend = make_backend(p);
    constexpr int kRounds = 25;
    backend.run([p](exec::Process& proc) {
      const index_t me = proc.rank();
      const index_t next = (me + 1) % p;
      const index_t prev = (me + p - 1) % p;
      // Per-rank deterministic schedule; sender and receiver derive the
      // same lengths from the sender's seed.
      Rng send_rng(static_cast<std::uint64_t>(me) * 7919 + 1);
      Rng recv_rng(static_cast<std::uint64_t>(prev) * 7919 + 1);
      std::vector<int> tags(kRounds);
      std::iota(tags.begin(), tags.end(), 100);
      for (int round = 0; round < kRounds; ++round) {
        const int send_tag = tags[static_cast<std::size_t>(round)];
        const index_t send_len =
            1 + static_cast<index_t>(send_rng.next_below(200));
        proc.send_values<real_t>(next, send_tag,
                                 stamp(me, send_tag, send_len));
        const index_t want_len =
            1 + static_cast<index_t>(recv_rng.next_below(200));
        const auto got =
            proc.recv_values<real_t>(prev, tags[static_cast<std::size_t>(
                                               round)]);
        ASSERT_EQ(got, stamp(prev, send_tag, want_len));
      }
    });
  }
}

TEST(ThreadBackend, HypercubeCollectivesMatchExpectedValues) {
  // The same collectives that power the solvers, on real threads: binomial
  // broadcast, reduction, ring allgather, and the pairwise all-to-all.
  for (const index_t p : {2, 4, 8}) {
    exec::ThreadBackend backend = make_backend(p);
    backend.run([p](exec::Process& proc) {
      const exec::Group g{0, p, 1};
      const index_t me = proc.rank();

      std::vector<real_t> data = me == 0 ? stamp(0, 1, 10)
                                         : std::vector<real_t>{};
      exec::broadcast(proc, g, data, 10);
      ASSERT_EQ(data, stamp(0, 1, 10));

      std::vector<real_t> ones(8, static_cast<real_t>(me + 1));
      exec::reduce_sum(proc, g, ones, 20);
      if (me == 0) {
        const real_t expect =
            static_cast<real_t>(p) * static_cast<real_t>(p + 1) / 2.0;
        for (const real_t v : ones) ASSERT_EQ(v, expect);
      }

      const auto gathered =
          exec::allgather(proc, g, stamp(me, 2, me + 1), 30);
      for (index_t r = 0; r < p; ++r) {
        ASSERT_EQ(gathered[static_cast<std::size_t>(r)], stamp(r, 2, r + 1));
      }

      std::vector<std::vector<real_t>> outgoing(
          static_cast<std::size_t>(p));
      for (index_t r = 0; r < p; ++r) {
        outgoing[static_cast<std::size_t>(r)] = stamp(me, 40 + r, 4);
      }
      const auto incoming =
          exec::all_to_all_personalized(proc, g, std::move(outgoing), 50);
      for (index_t r = 0; r < p; ++r) {
        ASSERT_EQ(incoming[static_cast<std::size_t>(r)],
                  stamp(r, 40 + me, 4));
      }
    });
  }
}

TEST(ThreadBackend, DeadlockWhenEveryPeerExitsIsReported) {
  // Rank 1 exits without sending; rank 0's recv can never complete.  The
  // backend must detect this promptly (no 30 s timeout wait) and raise
  // DeadlockError out of run().
  exec::ThreadBackend backend = make_backend(2);
  EXPECT_THROW(backend.run([](exec::Process& proc) {
                 if (proc.rank() == 0) proc.recv(1, 1);
               }),
               DeadlockError);
}

TEST(ThreadBackend, CyclicDeadlockHitsTimeout) {
  // Both ranks wait on each other: only the recv timeout can break this.
  exec::ThreadBackend backend = make_backend(2, /*timeout=*/0.2);
  EXPECT_THROW(backend.run([](exec::Process& proc) {
                 proc.recv(1 - proc.rank(), 1);
               }),
               DeadlockError);
}

TEST(ThreadBackend, UserErrorsTakePriorityOverSecondaryUnwinds) {
  exec::ThreadBackend backend = make_backend(4);
  try {
    backend.run([](exec::Process& proc) {
      if (proc.rank() == 2) throw NumericalError("rank 2 exploded");
      if (proc.rank() != 2) proc.recv(2, 1);  // never satisfied
    });
    FAIL() << "expected NumericalError";
  } catch (const NumericalError& e) {
    EXPECT_NE(std::string(e.what()).find("rank 2 exploded"),
              std::string::npos);
  }
}

TEST(ThreadBackend, TrisolverMatchesSequentialOnRealThreads) {
  // The tentpole promise: the identical DistributedTrisolver source that
  // reproduces the paper on the simulator also runs natively parallel.
  sparse::SymmetricCsc a0 = sparse::grid2d(13, 13);
  const sparse::Permutation perm = ordering::nested_dissection_grid2d(13, 13);
  sparse::SymmetricCsc a = sparse::permute_symmetric(a0, perm);
  numeric::SupernodalFactor l = numeric::multifrontal_cholesky(a);
  const index_t n = a.n();
  constexpr index_t m = 4;

  Rng rng(21);
  const std::vector<real_t> rhs = sparse::random_rhs(n, m, rng);
  std::vector<real_t> ref = rhs;
  trisolve::full_solve(l, ref.data(), m);

  for (const index_t p : {2, 4, 8}) {
    for (const auto variant :
         {partrisolve::Pipelining::column_priority,
          partrisolve::Pipelining::row_priority,
          partrisolve::Pipelining::fan_out}) {
      const mapping::SubcubeMapping map =
          mapping::subtree_to_subcube(l.partition(), p);
      partrisolve::Options opt;
      opt.pipelining = variant;
      partrisolve::DistributedTrisolver solver(l, map, opt);
      exec::ThreadBackend backend = make_backend(p);
      std::vector<real_t> x(static_cast<std::size_t>(n * m), 0.0);
      solver.solve(backend, rhs, x, m);
      for (std::size_t i = 0; i < x.size(); ++i) {
        ASSERT_NEAR(x[i], ref[i], 1e-9)
            << "p=" << p << " variant=" << static_cast<int>(variant)
            << " entry " << i;
      }
      ASSERT_LT(trisolve::relative_residual(a, x, rhs, m), 1e-9);
    }
  }
}

TEST(ThreadBackend, EventCountsMatchTheSimulatorExactly) {
  // Both backends run the same program, so the discrete events — flops
  // declared, messages and words sent — must agree exactly; only the
  // clocks differ (cost model vs. wall clock).
  sparse::SymmetricCsc a0 = sparse::grid2d(11, 11);
  const sparse::Permutation perm = ordering::nested_dissection_grid2d(11, 11);
  sparse::SymmetricCsc a = sparse::permute_symmetric(a0, perm);
  numeric::SupernodalFactor l = numeric::multifrontal_cholesky(a);
  const index_t n = a.n();
  constexpr index_t p = 4;
  constexpr index_t m = 2;

  Rng rng(5);
  const std::vector<real_t> rhs = sparse::random_rhs(n, m, rng);
  const mapping::SubcubeMapping map =
      mapping::subtree_to_subcube(l.partition(), p);

  auto run_forward = [&](exec::Comm& comm) {
    partrisolve::DistributedTrisolver solver(l, map, partrisolve::Options{});
    std::vector<real_t> y(static_cast<std::size_t>(n * m), 0.0);
    return solver.forward(comm, rhs, y, m).stats;
  };

  simpar::Machine::Config sim_cfg;
  sim_cfg.nprocs = p;
  simpar::Machine machine(sim_cfg);
  const exec::RunStats sim = run_forward(machine);

  exec::ThreadBackend backend = make_backend(p);
  const exec::RunStats real = run_forward(backend);

  ASSERT_EQ(sim.procs.size(), real.procs.size());
  for (std::size_t r = 0; r < sim.procs.size(); ++r) {
    EXPECT_EQ(sim.procs[r].flops, real.procs[r].flops) << "rank " << r;
    EXPECT_EQ(sim.procs[r].messages_sent, real.procs[r].messages_sent)
        << "rank " << r;
    EXPECT_EQ(sim.procs[r].words_sent, real.procs[r].words_sent)
        << "rank " << r;
  }
  EXPECT_GT(real.parallel_time(), 0.0);  // wall clock actually advanced
}

}  // namespace
}  // namespace sparts
