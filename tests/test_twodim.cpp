// The 2-D-partitioned triangular solver: correct results (vs sequential)
// and the expected cost inferiority versus the 1-D pipelined solver.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "mapping/subtree_to_subcube.hpp"
#include "numeric/multifrontal.hpp"
#include "ordering/nested_dissection.hpp"
#include "partrisolve/partrisolve.hpp"
#include "partrisolve/twodim.hpp"
#include "sparse/generators.hpp"
#include "sparse/permutation.hpp"
#include "trisolve/trisolve.hpp"
#include "simpar/machine.hpp"

namespace sparts {
namespace {

simpar::Machine make_machine(index_t p) {
  simpar::Machine::Config cfg;
  cfg.nprocs = p;
  cfg.cost = simpar::CostModel::t3d();
  cfg.topology = simpar::TopologyKind::hypercube;
  return simpar::Machine(cfg);
}

// (p, block_2d, nrhs, three_d)
using Combo = std::tuple<index_t, index_t, index_t, bool>;

class TwoDimSolveTest : public ::testing::TestWithParam<Combo> {};

TEST_P(TwoDimSolveTest, MatchesSequentialSolve) {
  const auto [p, b2, m, three_d] = GetParam();
  sparse::SymmetricCsc a = sparse::permute_symmetric(
      three_d ? sparse::grid3d(6, 6, 6) : sparse::grid2d(13, 13),
      three_d ? ordering::nested_dissection_grid3d(6, 6, 6)
              : ordering::nested_dissection_grid2d(13, 13));
  numeric::SupernodalFactor l = numeric::multifrontal_cholesky(a);
  const index_t n = a.n();

  Rng rng(61);
  std::vector<real_t> rhs = sparse::random_rhs(n, m, rng);
  std::vector<real_t> ref = rhs;
  trisolve::full_solve(l, ref.data(), m);

  const mapping::SubcubeMapping map =
      mapping::subtree_to_subcube(l.partition(), p);
  partrisolve::TwoDimOptions opt;
  opt.block_2d = b2;
  simpar::Machine machine = make_machine(p);
  std::vector<real_t> x(static_cast<std::size_t>(n * m), 0.0);
  auto [fw, bw] =
      partrisolve::solve_two_dim(machine, l, map, rhs, x, m, opt);
  EXPECT_GT(fw.time(), 0.0);
  EXPECT_GT(bw.time(), 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x[i], ref[i], 1e-9) << "entry " << i;
  }
  EXPECT_LT(trisolve::relative_residual(a, x, rhs, m), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TwoDimSolveTest,
    ::testing::Values(Combo{1, 8, 1, false}, Combo{2, 8, 1, false},
                      Combo{4, 4, 1, false}, Combo{8, 8, 2, false},
                      Combo{16, 8, 1, false}, Combo{4, 3, 3, false},
                      Combo{8, 8, 1, true}, Combo{16, 4, 2, true}));

TEST(TwoDimSolve, SlowerThanPipelined1dAtScale) {
  // Figure 5's point: the 2-D formulation cannot pipeline.  Its per-block
  // collectives cost (t/b)·log q startups serially, versus q + t/b
  // pipelined for the 1-D algorithm — so the 1-D solver wins once
  // separators are large (3-D problems), which is the regime the paper's
  // asymptotic "unscalable" verdict describes.
  sparse::SymmetricCsc a = sparse::permute_symmetric(
      sparse::grid3d(12, 12, 12),
      ordering::nested_dissection_grid3d(12, 12, 12));
  numeric::SupernodalFactor l = numeric::multifrontal_cholesky(a);
  const index_t p = 32;
  const mapping::SubcubeMapping map =
      mapping::subtree_to_subcube(l.partition(), p);
  const index_t n = a.n();
  Rng rng(62);
  std::vector<real_t> rhs = sparse::random_rhs(n, 1, rng);

  double t1d = 0.0, t2d = 0.0;
  {
    partrisolve::DistributedTrisolver solver(l, map, {});
    simpar::Machine machine = make_machine(p);
    std::vector<real_t> x(static_cast<std::size_t>(n), 0.0);
    auto [fw, bw] = solver.solve(machine, rhs, x, 1);
    t1d = fw.time() + bw.time();
  }
  {
    simpar::Machine machine = make_machine(p);
    std::vector<real_t> x(static_cast<std::size_t>(n), 0.0);
    auto [fw, bw] = partrisolve::solve_two_dim(machine, l, map, rhs, x, 1);
    t2d = fw.time() + bw.time();
  }
  EXPECT_GT(t2d, t1d) << "t1d=" << t1d << " t2d=" << t2d;
}

}  // namespace
}  // namespace sparts
