// Tests for the structural-invariant validators (SPARTS_CHECKS system):
// every corruption is rejected with a diagnostic naming the violated
// invariant as a bracketed [invariant-name] tag, and the runtime check
// level actually gates the expensive passes.  Registered under the CTest
// label `analysis`.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/checks.hpp"
#include "common/error.hpp"
#include "mapping/block_cyclic.hpp"
#include "ordering/etree.hpp"
#include "sparse/formats.hpp"
#include "sparse/generators.hpp"
#include "sparse/permutation.hpp"
#include "sparse/validate.hpp"

namespace sparts {
namespace {

/// Pin the check level for one test and restore the previous one on exit
/// (set_check_level overrides the environment, so tests must not leak it).
class ScopedCheckLevel {
 public:
  explicit ScopedCheckLevel(CheckLevel level) : saved_(check_level()) {
    set_check_level(level);
  }
  ~ScopedCheckLevel() { set_check_level(saved_); }
  ScopedCheckLevel(const ScopedCheckLevel&) = delete;
  ScopedCheckLevel& operator=(const ScopedCheckLevel&) = delete;

 private:
  CheckLevel saved_;
};

/// Expect `fn` to throw sparts::Error whose message contains `tag`.
template <typename Fn>
void expect_invariant_violation(Fn&& fn, const std::string& tag) {
  try {
    fn();
    FAIL() << "expected Error tagged " << tag;
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(tag), std::string::npos)
        << "wrong diagnostic: " << e.what();
  }
}

TEST(Validators, UnsortedCscColumnRejected) {
  // Column 0 holds rows {0, 2, 1}: diagonal first, but then descending.
  const std::vector<nnz_t> colptr = {0, 3, 4, 5};
  const std::vector<index_t> rowind = {0, 2, 1, 1, 2};
  expect_invariant_violation(
      [&] { sparse::validate_csc(3, colptr, rowind, 5); },
      "[csc-sortedness]");
}

TEST(Validators, OutOfRangeCscRowRejected) {
  // Column 0 references row 5 of a 3x3 matrix.
  const std::vector<nnz_t> colptr = {0, 2, 3, 4};
  const std::vector<index_t> rowind = {0, 5, 1, 2};
  expect_invariant_violation(
      [&] { sparse::validate_csc(3, colptr, rowind, 4); }, "[csc-bounds]");
}

TEST(Validators, MissingDiagonalRejected) {
  // Column 1's first stored row is 2, not the diagonal.
  const std::vector<nnz_t> colptr = {0, 1, 2, 3};
  const std::vector<index_t> rowind = {0, 2, 2};
  expect_invariant_violation(
      [&] { sparse::validate_csc(3, colptr, rowind, 3); }, "[csc-diagonal]");
}

TEST(Validators, SymmetricCscConstructorValidatesAtCheapLevel) {
  ScopedCheckLevel guard(CheckLevel::cheap);
  const std::vector<nnz_t> colptr = {0, 3, 4, 5};
  const std::vector<index_t> rowind = {0, 2, 1, 1, 2};
  const std::vector<real_t> values = {4.0, -1.0, -1.0, 4.0, 4.0};
  expect_invariant_violation(
      [&] { sparse::SymmetricCsc(3, colptr, rowind, values); },
      "[csc-sortedness]");
}

TEST(Validators, CheckLevelOffSkipsGatedValidation) {
  // Same corrupted arrays as above: with checks off, only the O(1)
  // unconditional shape checks run and construction succeeds.  This is
  // the benchmark-mode contract — validation cost is really gone.
  ScopedCheckLevel guard(CheckLevel::off);
  const std::vector<nnz_t> colptr = {0, 3, 4, 5};
  const std::vector<index_t> rowind = {0, 2, 1, 1, 2};
  const std::vector<real_t> values = {4.0, -1.0, -1.0, 4.0, 4.0};
  EXPECT_NO_THROW(sparse::SymmetricCsc(3, colptr, rowind, values));
}

TEST(Validators, NonBijectivePermutationRejected) {
  expect_invariant_violation(
      [] { sparse::Permutation(std::vector<index_t>{0, 0, 2}); },
      "[permutation-bijectivity]");
  expect_invariant_violation(
      [] { sparse::Permutation(std::vector<index_t>{0, 3, 1}); },
      "[permutation-bijectivity]");
}

TEST(Validators, CyclicEtreeRejected) {
  ordering::EliminationTree t;
  t.parent = {1, 2, 0};  // 0 -> 1 -> 2 -> 0
  expect_invariant_violation([&] { ordering::validate_etree(t); },
                             "[etree-acyclicity]");
}

TEST(Validators, EtreeParentOutOfRangeRejected) {
  ordering::EliminationTree t;
  t.parent = {1, 7};
  expect_invariant_violation([&] { ordering::validate_etree(t); },
                             "[etree-bounds]");
}

TEST(Validators, NonPostorderRejected) {
  // parent = {1, -1}: the only postorder is {0, 1}; {1, 0} visits the
  // root before its child.
  ordering::EliminationTree t;
  t.parent = {1, -1};
  const std::vector<index_t> bad = {1, 0};
  expect_invariant_violation([&] { ordering::validate_postorder(t, bad); },
                             "[postorder-consistency]");
  const std::vector<index_t> good = {0, 1};
  EXPECT_NO_THROW(ordering::validate_postorder(t, good));
}

TEST(Validators, ValidStructuresPass) {
  // A real matrix and its derived structures sail through the expensive
  // level: validators reject corruption, not correct data.
  ScopedCheckLevel guard(CheckLevel::expensive);
  const sparse::SymmetricCsc a = sparse::grid2d(8, 8);
  EXPECT_NO_THROW(sparse::validate_symmetric_csc(a));
  const ordering::EliminationTree t = ordering::elimination_tree(a);
  EXPECT_NO_THROW(ordering::validate_etree(t));
  EXPECT_NO_THROW(ordering::validate_postorder(t, ordering::postorder(t)));
  mapping::BlockCyclic1d map{/*b=*/4, /*q=*/4};
  EXPECT_NO_THROW(mapping::validate_block_cyclic(map, a.n()));
}

TEST(Validators, BlockCyclicShapeRejected) {
  mapping::BlockCyclic1d map{/*b=*/0, /*q=*/4};
  expect_invariant_violation([&] { mapping::validate_block_cyclic(map, 16); },
                             "[block-cyclic-shape]");
}

TEST(CheckLevels, ParseAcceptsNamesAndDigits) {
  EXPECT_EQ(parse_check_level("off"), CheckLevel::off);
  EXPECT_EQ(parse_check_level("cheap"), CheckLevel::cheap);
  EXPECT_EQ(parse_check_level("expensive"), CheckLevel::expensive);
  EXPECT_EQ(parse_check_level("0"), CheckLevel::off);
  EXPECT_EQ(parse_check_level("1"), CheckLevel::cheap);
  EXPECT_EQ(parse_check_level("2"), CheckLevel::expensive);
  EXPECT_THROW(parse_check_level("paranoid"), InvalidArgument);
}

TEST(CheckLevels, ToStringNamesLevels) {
  EXPECT_STREQ(to_string(CheckLevel::off), "off");
  EXPECT_STREQ(to_string(CheckLevel::cheap), "cheap");
  EXPECT_STREQ(to_string(CheckLevel::expensive), "expensive");
}

TEST(CheckLevels, AtLeastIsMonotone) {
  ScopedCheckLevel guard(CheckLevel::cheap);
  EXPECT_TRUE(checks_at_least(CheckLevel::off));
  EXPECT_TRUE(checks_at_least(CheckLevel::cheap));
  EXPECT_FALSE(checks_at_least(CheckLevel::expensive));
}

}  // namespace
}  // namespace sparts
