#!/usr/bin/env python3
"""Benchmark regression gate: compare fresh BENCH_*.json runs against the
baselines committed under results/.

Each gated bench has a small schema here: which array holds the rows, which
fields identify a row, and which metric fields to compare (with a
direction — some metrics are better high, some better low).  A metric that
moved more than --warn percent in the bad direction is reported as a
warning; more than --fail percent fails the gate (exit 1).  Improvements
never fail.

Wall-clock metrics are noisy, which is exactly why the thresholds are
percentages with headroom (10/25 by default) rather than exact matches;
ratio metrics (speedups, flop rates) are the stable signal.

Usage:
  tools/bench_gate.py                         # compare ./BENCH_*.json vs results/
  tools/bench_gate.py --current DIR           # fresh runs live in DIR
  tools/bench_gate.py --baseline DIR          # baselines live in DIR
  tools/bench_gate.py kernels taskdag         # gate a subset
  tools/bench_gate.py --warn 10 --fail 25     # thresholds in percent

A missing current file is skipped with a note (the gate only judges what
was re-run); a missing baseline is a warning (the baseline should be
committed).  Exit status: 0 ok / warnings only, 1 any failure, 2 usage.
No dependencies beyond the standard library.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# (rows key, identity fields, metrics: name -> direction)
# direction "high" = bigger is better, "low" = smaller is better.
SCHEMAS = {
    "kernels": {
        "file": "BENCH_kernels.json",
        "rows": "flop_rates",
        "key": ("kernel", "n"),
        "metrics": {"reference": "high", "tiled": "high"},
    },
    "faults": {
        "file": "BENCH_faults.json",
        "rows": "rows",
        "key": ("scenario", "n", "p"),
        "metrics": {"wall_seconds": "low"},
    },
    "taskdag": {
        "file": "BENCH_taskdag.json",
        "rows": "rows",
        "key": ("workload", "p"),
        "metrics": {
            "factor_tasks_speedup": "high",
            "solve_tasks_speedup": "high",
        },
    },
    # Wall latencies are noisy on shared hosts; gate the stable signals:
    # the SPSC/mutex ratio and the copied-bytes counter (exact — any
    # nonzero value means the zero-copy lane regressed to copying).
    "msgpath": {
        "file": "BENCH_msgpath.json",
        "rows": "rows",
        "key": ("kind", "bytes"),
        "metrics": {
            "spsc_gain": "high",
            "copied_kib_owned": "low",
        },
    },
    # End-to-end solve rows: only the message-path workloads carry the
    # msgpath_gain / copied_mb fields, so grid rows are skipped here.
    "real_vs_sim": {
        "file": "BENCH_real_vs_sim.json",
        "rows": "rows",
        "key": ("workload", "p", "nrhs"),
        "metrics": {
            "msgpath_gain": "high",
            "copied_mb": "low",
        },
    },
}


def load_rows(path: Path, schema: dict) -> dict[tuple, dict] | None:
    try:
        doc = json.loads(path.read_text())
    except FileNotFoundError:
        return None
    except json.JSONDecodeError as e:
        sys.exit(f"bench_gate: {path} is not valid JSON: {e}")
    rows = {}
    for row in doc.get(schema["rows"], []):
        rows[tuple(row.get(k) for k in schema["key"])] = row
    return rows


def regression_pct(direction: str, base: float, cur: float) -> float:
    """How much worse `cur` is than `base`, in percent (negative = better)."""
    if base == 0:
        return 0.0
    if direction == "high":
        return (base - cur) / base * 100.0
    return (cur - base) / base * 100.0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("benches", nargs="*", default=[],
                    help="subset of benches to gate (default: all)")
    ap.add_argument("--baseline", default="results",
                    help="directory of committed baseline JSONs")
    ap.add_argument("--current", default=".",
                    help="directory of freshly produced JSONs")
    ap.add_argument("--warn", type=float, default=10.0,
                    help="warn when a metric regresses more than this %%")
    ap.add_argument("--fail", type=float, default=25.0,
                    help="fail when a metric regresses more than this %%")
    args = ap.parse_args()

    names = args.benches or sorted(SCHEMAS)
    unknown = [n for n in names if n not in SCHEMAS]
    if unknown:
        ap.error(f"unknown bench(es): {', '.join(unknown)} "
                 f"(known: {', '.join(sorted(SCHEMAS))})")

    warnings = failures = compared = 0
    for name in names:
        schema = SCHEMAS[name]
        cur = load_rows(Path(args.current) / schema["file"], schema)
        if cur is None:
            print(f"[skip] {name}: no fresh {schema['file']} in "
                  f"{args.current} (not re-run)")
            continue
        base = load_rows(Path(args.baseline) / schema["file"], schema)
        if base is None:
            print(f"[warn] {name}: no baseline {schema['file']} in "
                  f"{args.baseline} — commit one")
            warnings += 1
            continue
        for key, base_row in sorted(base.items(), key=str):
            cur_row = cur.get(key)
            ident = ", ".join(f"{k}={v}" for k, v in
                              zip(schema["key"], key))
            if cur_row is None:
                print(f"[warn] {name}: row ({ident}) missing from "
                      f"fresh run")
                warnings += 1
                continue
            for metric, direction in schema["metrics"].items():
                if metric not in base_row or metric not in cur_row:
                    continue
                compared += 1
                pct = regression_pct(direction, float(base_row[metric]),
                                     float(cur_row[metric]))
                line = (f"{name}: {metric} ({ident}) "
                        f"{base_row[metric]:.4g} -> {cur_row[metric]:.4g} "
                        f"({pct:+.1f}% regression)")
                if pct > args.fail:
                    print(f"[FAIL] {line}")
                    failures += 1
                elif pct > args.warn:
                    print(f"[warn] {line}")
                    warnings += 1
    print(f"bench_gate: {compared} metric(s) compared, "
          f"{warnings} warning(s), {failures} failure(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
