#!/usr/bin/env python3
"""SPARTS custom lint: project-specific C++ rules the generic tools miss.

Rules (see docs/static_analysis.md):

  raw-assert      <assert.h> assert() is compiled out by NDEBUG and prints
                  no context.  Use SPARTS_CHECK (always on) or
                  SPARTS_DCHECK (debug-only) from common/error.hpp.
  naked-new       `new` outside a smart-pointer factory leaks on the first
                  exception.  Use std::make_unique / containers.
  untagged-send   A send with an integer-literal tag (src/ only).  The
                  solver's message-passing discipline requires every
                  in-flight message to have a unique (src, dst, tag), so
                  tags must come from a named scheme or constant that the
                  reader can audit — not from magic numbers.  Tests are
                  exempt: micro-programs use literal tags deliberately.
  raw-panel-copy  memcpy in solver code (src/ outside the exec/common
                  layers and the blessed pack/unpack helper
                  partrisolve/packets.cpp).  Panel and payload bytes move
                  through audited helpers so ProcStats::bytes_copied
                  stays truthful; an ad-hoc memcpy is an invisible copy.
  narrowing-cast  C-style casts to integer types hide narrowing and
                  signedness bugs.  Use static_cast, which clang-tidy and
                  -Wconversion can then reason about.
  raw-thread      std::thread constructed outside src/exec/ escapes the
                  exec contract: its failures bypass error_priority, its
                  work is invisible to RunStats and the tracer, and
                  nothing joins it on the error path.  All parallelism
                  goes through a backend (ThreadBackend, TaskBackend).
                  std::thread::hardware_concurrency() is fine — the rule
                  only matches the type, not its statics.
  raw-try-recv    Process::try_recv is the reliability envelope's polling
                  primitive (src/exec/reliable.cpp); algorithm code that
                  polls directly bypasses sequence numbering, dedup and the
                  retransmit protocol, silently forfeiting fault tolerance.
                  Outside src/exec/ (and the backends implementing the
                  primitive) use blocking recv(), and let the envelope poll.
                  Tests are exempt: they probe the primitive deliberately.

Suppress a finding by appending `// sparts-lint: allow(<rule>)` to the
offending line.

Usage:
  tools/lint.py            # lint src/ tools/ tests/ relative to the repo root
  tools/lint.py PATH...    # lint the given files or directories

Exit status: 0 when clean, 1 when any finding is reported, 2 on usage error.
No dependencies beyond the standard library.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
CXX_SUFFIXES = {".cpp", ".hpp", ".cc", ".h"}

# Each rule: (name, regex on the comment/string-stripped line, message,
# predicate on the repo-relative path).
RULES = [
    (
        "raw-assert",
        re.compile(r"\bassert\s*\("),
        "use SPARTS_CHECK / SPARTS_DCHECK instead of raw assert()",
        lambda rel: True,
    ),
    (
        "naked-new",
        re.compile(r"\bnew\b"),
        "use std::make_unique or a container instead of naked new",
        lambda rel: True,
    ),
    (
        "untagged-send",
        re.compile(
            r"(?:\.|->)\s*send(?:_values\s*<[^<>]*>)?\s*\("
            r"\s*[^,()]+,\s*[-+]?\d+\s*,"
        ),
        "message tag is an integer literal; derive tags from a named "
        "scheme or constant (unique (src, dst, tag) per in-flight message)",
        lambda rel: rel.parts[:1] == ("src",),
    ),
    (
        "raw-try-recv",
        re.compile(r"(?:\.|->)\s*try_recv\s*\("),
        "direct try_recv polling outside the exec layer bypasses the "
        "reliability envelope; use blocking recv()",
        lambda rel: rel.parts[:1] == ("src",)
        and rel.parts[:2] not in {("src", "exec"), ("src", "simpar")},
    ),
    (
        "raw-thread",
        re.compile(r"\bstd::thread\b(?!\s*::)"),
        "raw std::thread construction outside the exec layer; all "
        "parallelism must go through an exec backend (ThreadBackend, "
        "TaskBackend) so error propagation, stats, and shutdown stay "
        "uniform",
        # simpar::Machine is the simulated backend: like src/exec/ it
        # implements the contract rather than escaping it.
        lambda rel: rel.parts[:2] not in {("src", "exec"), ("src", "simpar")},
    ),
    (
        "raw-panel-copy",
        re.compile(r"\b(?:std::)?memcpy\s*\("),
        "raw memcpy in solver code: panel/payload bytes must move through "
        "the sanctioned helpers (partrisolve/packets.cpp packing, the "
        "send_owned zero-copy lane, ArenaVector moves) so every copy is "
        "visible in ProcStats::bytes_copied; ad-hoc memcpy reintroduces "
        "silent copies the stats cannot see",
        # The exec/common layers ARE the sanctioned machinery, and
        # packets.cpp is the one blessed pack/unpack site.
        lambda rel: rel.parts[:1] == ("src",)
        and rel.parts[:2] not in {("src", "exec"), ("src", "common")}
        and rel.parts != ("src", "partrisolve", "packets.cpp"),
    ),
    (
        "narrowing-cast",
        re.compile(
            r"\(\s*(?:int|long|short|unsigned|index_t|nnz_t|size_t|"
            r"std::size_t|std::u?int(?:8|16|32|64)_t)\s*\)\s*[A-Za-z_0-9(]"
        ),
        "C-style cast to an integer type; use static_cast",
        lambda rel: True,
    ),
]

SUPPRESS = re.compile(r"//\s*sparts-lint:\s*allow\(([a-z-]+)\)")


def strip_comments_and_strings(text: str) -> str:
    """Replace comments and string/char literal bodies with spaces,
    preserving line structure so findings keep their line numbers."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(c)
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(c)
            elif c == "\n":  # unterminated; bail back to code
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def lint_file(path: pathlib.Path) -> list[str]:
    try:
        rel = path.resolve().relative_to(REPO_ROOT)
    except ValueError:
        rel = path
    raw_lines = path.read_text(encoding="utf-8").splitlines()
    code_lines = strip_comments_and_strings(
        path.read_text(encoding="utf-8")
    ).splitlines()

    findings = []
    for lineno, (raw, code) in enumerate(zip(raw_lines, code_lines), start=1):
        allowed = set(SUPPRESS.findall(raw))
        for name, pattern, message, applies in RULES:
            if not applies(rel):
                continue
            if name in allowed:
                continue
            if pattern.search(code):
                findings.append(f"{rel}:{lineno}: [{name}] {message}")
    return findings


def collect_files(paths: list[pathlib.Path]) -> list[pathlib.Path]:
    files = []
    for p in paths:
        if p.is_dir():
            files.extend(
                f for f in sorted(p.rglob("*")) if f.suffix in CXX_SUFFIXES
            )
        elif p.is_file():
            files.append(p)
        else:
            print(f"lint.py: no such file or directory: {p}", file=sys.stderr)
            sys.exit(2)
    return files


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", type=pathlib.Path,
                        help="files or directories (default: src tools tests)")
    args = parser.parse_args()

    paths = args.paths or [REPO_ROOT / d for d in ("src", "tools", "tests")]
    files = collect_files(paths)

    findings = []
    for f in files:
        findings.extend(lint_file(f))

    for line in findings:
        print(line)
    print(
        f"lint.py: {len(files)} file(s), {len(findings)} finding(s)",
        file=sys.stderr,
    )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
