// sparts_gen — write SPARTS test matrices as Matrix Market files, for
// interop with other solvers and for feeding sparts_solve --matrix.
//
//   sparts_gen --grid2d 50 -o poisson2d.mtx
//   sparts_gen --grid3d 12 --stencil 27 -o brick.mtx
//   sparts_gen --grid2d 20 --dof 6 -o frame.mtx
//   sparts_gen --paper BCSSTK15 --scale 0.5 -o bcsstk15_like.mtx
#include <iostream>
#include <string>

#include "solver/workloads.hpp"
#include "sparse/generators.hpp"
#include "sparse/io.hpp"

namespace {

using namespace sparts;

void usage() {
  std::cout <<
      R"(sparts_gen — generate SPARTS test matrices (Matrix Market output)

input (choose one):
  --grid2d K            K x K mesh
  --grid3d K            K x K x K mesh
  --paper NAME          synthetic counterpart of a paper matrix
                        (BCSSTK15, BCSSTK31, HSCT21954, CUBE35, COPTER2)
  --random N            random SPD with ~4 off-diagonals per row

options:
  --stencil S           2-D: 5 or 9; 3-D: 7 or 27     (defaults 5 / 7)
  --dof D               unknowns per mesh node        (default 1)
  --scale X             linear scale for --paper      (default 1.0)
  --seed S              RNG seed for --random         (default 1)
  -o FILE               output path                   (default out.mtx)
)";
}

}  // namespace

int main(int argc, char** argv) {
  try {
    std::string out_path = "out.mtx";
    std::string paper;
    index_t grid2 = 0, grid3 = 0, rnd = 0, dof = 1;
    int stencil = 0;
    double scale = 1.0;
    std::uint64_t seed = 1;

    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> std::string {
        if (i + 1 >= argc) throw InvalidArgument(arg + " needs a value");
        return argv[++i];
      };
      if (arg == "--grid2d") {
        grid2 = std::stoll(next());
      } else if (arg == "--grid3d") {
        grid3 = std::stoll(next());
      } else if (arg == "--paper") {
        paper = next();
      } else if (arg == "--random") {
        rnd = std::stoll(next());
      } else if (arg == "--stencil") {
        stencil = std::stoi(next());
      } else if (arg == "--dof") {
        dof = std::stoll(next());
      } else if (arg == "--scale") {
        scale = std::stod(next());
      } else if (arg == "--seed") {
        seed = std::stoull(next());
      } else if (arg == "-o") {
        out_path = next();
      } else if (arg == "--help" || arg == "-h") {
        usage();
        return 0;
      } else {
        std::cerr << "unknown argument: " << arg << "\n";
        usage();
        return 2;
      }
    }

    sparse::SymmetricCsc a;
    if (grid2 > 0) {
      const int st = stencil == 0 ? 5 : stencil;
      a = dof > 1 ? sparse::grid2d_dof(grid2, grid2, st, dof)
                  : sparse::grid2d(grid2, grid2, st);
    } else if (grid3 > 0) {
      const int st = stencil == 0 ? 7 : stencil;
      a = dof > 1 ? sparse::grid3d_dof(grid3, grid3, grid3, st, dof)
                  : sparse::grid3d(grid3, grid3, grid3, st);
    } else if (!paper.empty()) {
      a = solver::paper_problem(paper, scale).matrix;
    } else if (rnd > 0) {
      Rng rng(seed);
      a = sparse::random_spd(rnd, 4, rng);
    } else {
      usage();
      return 2;
    }

    sparse::write_matrix_market(a, out_path);
    std::cout << "wrote " << out_path << ": N = " << a.n()
              << ", nnz(lower) = " << a.nnz_lower() << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
