// sparts_solve — command-line sparse SPD solver.
//
//   sparts_solve --matrix stiffness.mtx --nrhs 4 --ordering nd
//   sparts_solve --grid3d 20 --procs 64            # simulated machine
//   sparts_solve --grid2d 100 --refine 2 --ordering md
//
// Reads a symmetric Matrix Market file (or generates a test grid), runs
// the full pipeline, and prints analysis statistics, timings, and the
// residual.  With --procs > 1 the distributed pipeline runs on the
// simulated T3D-like machine and the per-phase simulated times are shown.
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "common/timer.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "obs/trace.hpp"
#include "solver/condest.hpp"
#include "solver/report.hpp"
#include "solver/sparse_solver.hpp"
#include "sparse/generators.hpp"
#include "sparse/io.hpp"
#include "trisolve/trisolve.hpp"

namespace {

using namespace sparts;

void usage() {
  std::cout <<
      R"(sparts_solve — sparse SPD direct solver (SC'95 reproduction library)

input (choose one):
  --matrix FILE.mtx     symmetric Matrix Market file (real or pattern)
  --grid2d K            K x K 5-point test grid
  --grid3d K            K x K x K 7-point test grid

options:
  --nrhs M              number of right-hand sides        (default 1)
  --ordering NAME       nd | md | rcm | natural           (default nd)
  --procs P             run the distributed pipeline on P processors
                        (default 0 = sequential host solve)
  --backend NAME        execution backend for the parallel phases
                        (default sim); registered backends:
)";
  // The backend list is generated from the solver's registry so this text
  // can never drift from what --backend actually accepts.
  for (const solver::BackendInfo& info : solver::execution_backends()) {
    std::cout << "                          " << info.name << " — "
              << info.summary << "\n";
  }
  std::cout <<
      R"(  --kernels NAME        tiled (cache-blocked dense kernels) | ref (naive
                        loops; conformance oracle)  (default: SPARTS_KERNELS
                        environment variable, else tiled)
  --refine N            iterative-refinement steps        (default 0)
  --report              print the full analysis report
  --condest             estimate the 1-norm condition number
  --amalgamate W,Z      relaxed supernodes: max width W, relax Z zeros/col

robustness (see docs/robustness.md):
  --faults SPEC         fault scenario for the faulty backends, e.g.
                        seed=42,drop=0.05,dup=0.02,delay=0.1:0.01,
                        reorder=0.05,stall=2@0.5,crash=1@40,max_faults=100
  --pivot MODE          fail (throw on a non-positive pivot, default) |
                        perturb (boost tiny pivots and recover accuracy
                        with iterative refinement; result is "degraded")
  SPARTS_TIMEOUT_MS / SPARTS_MAX_RETRY tune the reliability envelope.

observability:
  --trace FILE.json     record per-rank event traces and write them as
                        Chrome trace_event JSON (open in Perfetto or
                        chrome://tracing).  Timestamps are virtual
                        cost-model seconds on sim/checked backends, wall
                        seconds on threads.  SPARTS_TRACE=FILE.json does
                        the same; the flag wins.
  --metrics FILE.json   collect counters / gauges / histograms (message
                        sizes, kernel flop rates, per-phase splits) and
                        write them plus the phase profile as JSON
  --help                this text
)";
}

/// Strict numeric argument parsing: the whole token must be an integer in
/// range.  std::stoll alone would accept "8abc" and throw opaque
/// std::invalid_argument on junk.
long long parse_count(const std::string& flag, const std::string& value) {
  std::size_t used = 0;
  long long v = 0;
  try {
    v = std::stoll(value, &used);
  } catch (const std::exception&) {
    throw InvalidArgument(flag + " expects an integer, got: " + value);
  }
  if (used != value.size()) {
    throw InvalidArgument(flag + " expects an integer, got: " + value);
  }
  return v;
}

dense::PivotMode parse_pivot(const std::string& s) {
  if (s == "fail") return dense::PivotMode::fail;
  if (s == "perturb") return dense::PivotMode::perturb;
  throw InvalidArgument("unknown pivot mode: " + s);
}

dense::KernelImpl parse_kernels(const std::string& s) {
  if (s == "reference" || s == "ref" || s == "naive") {
    return dense::KernelImpl::reference;
  }
  if (s == "tiled" || s == "blocked") return dense::KernelImpl::tiled;
  throw InvalidArgument("unknown kernel implementation: " + s);
}

solver::OrderingMethod parse_ordering(const std::string& s) {
  if (s == "nd") return solver::OrderingMethod::nested_dissection;
  if (s == "md") return solver::OrderingMethod::minimum_degree;
  if (s == "rcm") return solver::OrderingMethod::rcm;
  if (s == "natural") return solver::OrderingMethod::natural;
  throw InvalidArgument("unknown ordering: " + s);
}

}  // namespace

int main(int argc, char** argv) {
  // Outlives the try so a structured solve failure can still flush the
  // metrics collected up to the fault (the CI fault matrix uploads them).
  std::string metrics_path;
  std::string trace_path;
  auto flush_observability = [&] {
    if (!trace_path.empty()) {
      if (obs::Tracer::instance().write_chrome_trace_file(trace_path)) {
        std::cerr << "trace written to " << trace_path << "\n";
      } else {
        std::cerr << "error: cannot write trace to " << trace_path << "\n";
      }
    }
    if (metrics_path.empty()) return;
    if (obs::write_metrics_report_file(metrics_path)) {
      std::cerr << "metrics written to " << metrics_path << "\n";
    } else {
      std::cerr << "error: cannot write metrics to " << metrics_path << "\n";
    }
  };
  try {
    std::string matrix_path;
    index_t grid2 = 0, grid3 = 0;
    index_t nrhs = 1;
    index_t procs = 0;
    int refine = 0;
    bool report = false;
    bool condest = false;
    if (const char* env = std::getenv("SPARTS_TRACE")) {
      if (*env != '\0') trace_path = env;
    }
    solver::Options options;

    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> std::string {
        if (i + 1 >= argc) throw InvalidArgument(arg + " needs a value");
        return argv[++i];
      };
      if (arg == "--matrix") {
        matrix_path = next();
      } else if (arg == "--grid2d") {
        grid2 = parse_count(arg, next());
      } else if (arg == "--grid3d") {
        grid3 = parse_count(arg, next());
      } else if (arg == "--nrhs") {
        nrhs = parse_count(arg, next());
      } else if (arg == "--ordering") {
        options.ordering = parse_ordering(next());
      } else if (arg == "--procs") {
        procs = parse_count(arg, next());
      } else if (arg == "--backend") {
        options.backend = solver::parse_execution_backend(next());
      } else if (arg == "--kernels") {
        options.kernels = parse_kernels(next());
      } else if (arg == "--faults") {
        options.fault_plan = exec::FaultPlan::parse(next());
      } else if (arg == "--pivot") {
        options.pivot_mode = parse_pivot(next());
      } else if (arg == "--refine") {
        refine = static_cast<int>(parse_count(arg, next()));
      } else if (arg == "--report") {
        report = true;
      } else if (arg == "--condest") {
        condest = true;
      } else if (arg == "--trace") {
        trace_path = next();
      } else if (arg == "--metrics") {
        metrics_path = next();
      } else if (arg == "--amalgamate") {
        const std::string v = next();
        const auto comma = v.find(',');
        if (comma == std::string::npos) {
          throw InvalidArgument("--amalgamate expects W,Z");
        }
        options.amalgamation_max_width =
            parse_count(arg, v.substr(0, comma));
        options.amalgamation_relax_zeros =
            parse_count(arg, v.substr(comma + 1));
      } else if (arg == "--help" || arg == "-h") {
        usage();
        return 0;
      } else {
        std::cerr << "unknown argument: " << arg << "\n";
        usage();
        return 2;
      }
    }

    if (!trace_path.empty()) obs::Tracer::instance().enable();
    if (!metrics_path.empty()) obs::enable_metrics();

    sparse::SymmetricCsc a;
    if (!matrix_path.empty()) {
      a = sparse::read_matrix_market(matrix_path);
      std::cout << "matrix: " << matrix_path << "\n";
    } else if (grid2 > 0) {
      a = sparse::grid2d(grid2, grid2);
      std::cout << "matrix: grid2d " << grid2 << "x" << grid2 << "\n";
    } else if (grid3 > 0) {
      a = sparse::grid3d(grid3, grid3, grid3);
      std::cout << "matrix: grid3d " << grid3 << "^3\n";
    } else {
      usage();
      return 2;
    }
    std::cout << "N = " << a.n() << "   nnz(lower) = " << a.nnz_lower()
              << "   nrhs = " << nrhs << "\n";

    Rng rng(12345);
    const std::vector<real_t> b = sparse::random_rhs(a.n(), nrhs, rng);

    if (procs > 0) {
      // Distributed pipeline on the selected exec backend.
      const auto result = solver::parallel_solve(a, b, nrhs, procs, options);
      const solver::BackendInfo& binfo =
          solver::execution_backend_info(options.backend);
      const bool sim =
          options.backend == solver::ExecutionBackend::simulated ||
          options.backend == solver::ExecutionBackend::checked ||
          options.backend == solver::ExecutionBackend::faulty;
      const bool checked =
          options.backend == solver::ExecutionBackend::checked ||
          options.backend == solver::ExecutionBackend::checked_threads;
      const bool faulty =
          options.backend == solver::ExecutionBackend::faulty ||
          options.backend == solver::ExecutionBackend::faulty_threads;
      const bool tasks = options.backend == solver::ExecutionBackend::tasks;
      std::cout << "\nbackend " << binfo.name << " (" << binfo.summary
                << "): " << procs
                << (sim ? " processors, simulated seconds\n"
                        : " ranks, wall-clock seconds\n")
                << "  factorization  " << format_fixed(result.factor_time, 4)
                << " s\n"
                << "  redistribution " << format_fixed(result.redist_time, 4)
                << " s\n"
                << "  forward solve  "
                << format_fixed(result.forward_time, 4) << " s\n"
                << "  backward solve "
                << format_fixed(result.backward_time, 4) << " s\n";
      // Shapes of the supernode task DAGs the parallel phases executed;
      // every backend lowers the same graphs (the SPMD loops walk the
      // graph's topological schedule).
      auto dag_line = [](const char* name, const exec::GraphStats& g) {
        std::cout << "  " << name << " " << g.tasks << " tasks, " << g.edges
                  << " edges, depth " << g.depth << ", avg parallelism "
                  << format_fixed(g.avg_parallelism, 2) << "\n";
      };
      std::cout << "task DAG shapes:\n";
      dag_line("factor  ", result.factor_dag);
      dag_line("forward ", result.forward_dag);
      dag_line("backward", result.backward_dag);
      if (tasks) {
        std::cout << "task scheduler:  " << result.task_scheduler.workers
                  << " workers, " << result.task_scheduler.jobs_run
                  << " jobs, " << result.task_scheduler.steals << " steals, "
                  << result.task_scheduler.parks << " parks\n";
      }
      if (checked) {
        std::cout << "message audit:   " << result.checked_messages
                  << " sends checked, " << result.analysis_findings
                  << " findings\n";
      }
      if (faulty) {
        std::cout << "fault injection: " << options.fault_plan.summary()
                  << "\n"
                  << "  injected " << result.faults_injected
                  << " fault(s), recovered with " << result.retransmits
                  << " retransmit(s), " << result.dup_discarded
                  << " duplicate(s) discarded\n";
      }
      if (result.status == solver::SolveStatus::degraded) {
        std::cout << "status: DEGRADED — " << result.perturbed_pivots
                  << " pivot(s) perturbed, " << result.refine_iterations
                  << " refinement sweep(s), residual " << result.residual
                  << "\n";
      }
      const real_t resid =
          trisolve::relative_residual(a, result.x, b, nrhs);
      std::cout << "relative residual: " << resid << "\n";
      flush_observability();
      return resid < 1e-8 ? 0 : 1;
    }

    // Host (sequential) solve.
    WallTimer timer;
    const solver::SparseSolver s = solver::SparseSolver::factorize(a, options);
    const double factor_seconds = timer.seconds();
    if (report) {
      solver::ReportOptions ropt;
      ropt.nrhs = nrhs;
      std::cout << "\n" << solver::analysis_report(s, ropt) << "\n";
    }
    std::cout << "\nanalysis/factorization (host):\n"
              << "  nnz(L)          " << s.info().factor_nnz << "\n"
              << "  factor flops    " << s.info().factor_flops << "\n"
              << "  supernodes      " << s.info().num_supernodes << "\n"
              << "  factor time     " << format_fixed(factor_seconds, 3)
              << " s\n";

    timer.reset();
    real_t resid = 0.0;
    std::vector<real_t> x;
    if (refine > 0) {
      x = s.solve_refined(b, nrhs, refine, 1e-15, &resid);
    } else {
      x = s.solve(b, nrhs);
      resid = trisolve::relative_residual(a, x, b, nrhs);
    }
    std::cout << "  solve time      " << format_fixed(timer.seconds(), 4)
              << " s\n"
              << "relative residual: " << resid << "\n";
    if (condest) {
      const auto est = solver::estimate_condition(s);
      std::cout << "condition estimate: cond_1(A) ~ " << est.condition()
                << "  (||A||_1 = " << est.norm_a << ", ||A^-1||_1 >= "
                << est.norm_ainv << ", " << est.solves_used << " solves)\n";
    }
    return resid < 1e-8 ? 0 : 1;
  } catch (const solver::SolveError& e) {
    // Structured failure: which phase died, why, and where every rank was.
    std::cerr << "solve failed in phase: " << e.failed_phase() << "\n"
              << "cause: " << e.cause() << "\n";
    if (!e.progress().empty()) std::cerr << e.progress() << "\n";
    flush_observability();
    return 3;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
