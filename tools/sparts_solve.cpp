// sparts_solve — command-line sparse SPD solver.
//
//   sparts_solve --matrix stiffness.mtx --nrhs 4 --ordering nd
//   sparts_solve --grid3d 20 --procs 64            # simulated machine
//   sparts_solve --grid2d 100 --refine 2 --ordering md
//
// Reads a symmetric Matrix Market file (or generates a test grid), runs
// the full pipeline, and prints analysis statistics, timings, and the
// residual.  With --procs > 1 the distributed pipeline runs on the
// simulated T3D-like machine and the per-phase simulated times are shown.
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "common/timer.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "obs/trace.hpp"
#include "solver/condest.hpp"
#include "solver/report.hpp"
#include "solver/sparse_solver.hpp"
#include "sparse/generators.hpp"
#include "sparse/io.hpp"
#include "trisolve/trisolve.hpp"

namespace {

using namespace sparts;

void usage() {
  std::cout <<
      R"(sparts_solve — sparse SPD direct solver (SC'95 reproduction library)

input (choose one):
  --matrix FILE.mtx     symmetric Matrix Market file (real or pattern)
  --grid2d K            K x K 5-point test grid
  --grid3d K            K x K x K 7-point test grid

options:
  --nrhs M              number of right-hand sides        (default 1)
  --ordering NAME       nd | md | rcm | natural           (default nd)
  --procs P             run the distributed pipeline on P processors
                        (default 0 = sequential host solve)
  --backend NAME        sim (deterministic simulator, T3D cost model) |
                        threads (one std::thread per rank) |
                        checked (sim audited for races / tag collisions /
                        orphaned sends / deadlock cycles; findings fail
                        the run) | checked-threads (same audit over the
                        threaded backend)  (default sim)
  --kernels NAME        tiled (cache-blocked dense kernels) | ref (naive
                        loops; conformance oracle)  (default: SPARTS_KERNELS
                        environment variable, else tiled)
  --refine N            iterative-refinement steps        (default 0)
  --report              print the full analysis report
  --condest             estimate the 1-norm condition number
  --amalgamate W,Z      relaxed supernodes: max width W, relax Z zeros/col

observability:
  --trace FILE.json     record per-rank event traces and write them as
                        Chrome trace_event JSON (open in Perfetto or
                        chrome://tracing).  Timestamps are virtual
                        cost-model seconds on sim/checked backends, wall
                        seconds on threads.  SPARTS_TRACE=FILE.json does
                        the same; the flag wins.
  --metrics FILE.json   collect counters / gauges / histograms (message
                        sizes, kernel flop rates, per-phase splits) and
                        write them plus the phase profile as JSON
  --help                this text
)";
}

solver::ExecutionBackend parse_backend(const std::string& s) {
  if (s == "sim") return solver::ExecutionBackend::simulated;
  if (s == "threads") return solver::ExecutionBackend::threads;
  if (s == "checked") return solver::ExecutionBackend::checked;
  if (s == "checked-threads") {
    return solver::ExecutionBackend::checked_threads;
  }
  throw InvalidArgument("unknown backend: " + s);
}

dense::KernelImpl parse_kernels(const std::string& s) {
  if (s == "reference" || s == "ref" || s == "naive") {
    return dense::KernelImpl::reference;
  }
  if (s == "tiled" || s == "blocked") return dense::KernelImpl::tiled;
  throw InvalidArgument("unknown kernel implementation: " + s);
}

solver::OrderingMethod parse_ordering(const std::string& s) {
  if (s == "nd") return solver::OrderingMethod::nested_dissection;
  if (s == "md") return solver::OrderingMethod::minimum_degree;
  if (s == "rcm") return solver::OrderingMethod::rcm;
  if (s == "natural") return solver::OrderingMethod::natural;
  throw InvalidArgument("unknown ordering: " + s);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    std::string matrix_path;
    index_t grid2 = 0, grid3 = 0;
    index_t nrhs = 1;
    index_t procs = 0;
    int refine = 0;
    bool report = false;
    bool condest = false;
    std::string trace_path;
    std::string metrics_path;
    if (const char* env = std::getenv("SPARTS_TRACE")) {
      if (*env != '\0') trace_path = env;
    }
    solver::Options options;

    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> std::string {
        if (i + 1 >= argc) throw InvalidArgument(arg + " needs a value");
        return argv[++i];
      };
      if (arg == "--matrix") {
        matrix_path = next();
      } else if (arg == "--grid2d") {
        grid2 = std::stoll(next());
      } else if (arg == "--grid3d") {
        grid3 = std::stoll(next());
      } else if (arg == "--nrhs") {
        nrhs = std::stoll(next());
      } else if (arg == "--ordering") {
        options.ordering = parse_ordering(next());
      } else if (arg == "--procs") {
        procs = std::stoll(next());
      } else if (arg == "--backend") {
        options.backend = parse_backend(next());
      } else if (arg == "--kernels") {
        options.kernels = parse_kernels(next());
      } else if (arg == "--refine") {
        refine = std::stoi(next());
      } else if (arg == "--report") {
        report = true;
      } else if (arg == "--condest") {
        condest = true;
      } else if (arg == "--trace") {
        trace_path = next();
      } else if (arg == "--metrics") {
        metrics_path = next();
      } else if (arg == "--amalgamate") {
        const std::string v = next();
        const auto comma = v.find(',');
        if (comma == std::string::npos) {
          throw InvalidArgument("--amalgamate expects W,Z");
        }
        options.amalgamation_max_width = std::stoll(v.substr(0, comma));
        options.amalgamation_relax_zeros = std::stoll(v.substr(comma + 1));
      } else if (arg == "--help" || arg == "-h") {
        usage();
        return 0;
      } else {
        std::cerr << "unknown argument: " << arg << "\n";
        usage();
        return 2;
      }
    }

    if (!trace_path.empty()) obs::Tracer::instance().enable();
    if (!metrics_path.empty()) obs::enable_metrics();

    sparse::SymmetricCsc a;
    if (!matrix_path.empty()) {
      a = sparse::read_matrix_market(matrix_path);
      std::cout << "matrix: " << matrix_path << "\n";
    } else if (grid2 > 0) {
      a = sparse::grid2d(grid2, grid2);
      std::cout << "matrix: grid2d " << grid2 << "x" << grid2 << "\n";
    } else if (grid3 > 0) {
      a = sparse::grid3d(grid3, grid3, grid3);
      std::cout << "matrix: grid3d " << grid3 << "^3\n";
    } else {
      usage();
      return 2;
    }
    std::cout << "N = " << a.n() << "   nnz(lower) = " << a.nnz_lower()
              << "   nrhs = " << nrhs << "\n";

    Rng rng(12345);
    const std::vector<real_t> b = sparse::random_rhs(a.n(), nrhs, rng);

    if (procs > 0) {
      // Distributed pipeline on the selected exec backend.
      const auto result = solver::parallel_solve(a, b, nrhs, procs, options);
      const bool sim =
          options.backend == solver::ExecutionBackend::simulated ||
          options.backend == solver::ExecutionBackend::checked;
      const bool checked =
          options.backend == solver::ExecutionBackend::checked ||
          options.backend == solver::ExecutionBackend::checked_threads;
      std::cout << (sim ? "\nsimulated machine: " : "\nthread backend: ")
                << procs
                << (sim ? " processors (T3D cost model)\n"
                        : " rank threads (wall clock)\n")
                << "  factorization  " << format_fixed(result.factor_time, 4)
                << " s\n"
                << "  redistribution " << format_fixed(result.redist_time, 4)
                << " s\n"
                << "  forward solve  "
                << format_fixed(result.forward_time, 4) << " s\n"
                << "  backward solve "
                << format_fixed(result.backward_time, 4) << " s\n";
      if (checked) {
        std::cout << "message audit:   " << result.checked_messages
                  << " sends checked, " << result.analysis_findings
                  << " findings\n";
      }
      const real_t resid =
          trisolve::relative_residual(a, result.x, b, nrhs);
      std::cout << "relative residual: " << resid << "\n";
      if (!trace_path.empty()) {
        if (obs::Tracer::instance().write_chrome_trace_file(trace_path)) {
          std::cerr << "trace written to " << trace_path << "\n";
        } else {
          std::cerr << "error: cannot write trace to " << trace_path << "\n";
        }
      }
      if (!metrics_path.empty()) {
        if (obs::write_metrics_report_file(metrics_path)) {
          std::cerr << "metrics written to " << metrics_path << "\n";
        } else {
          std::cerr << "error: cannot write metrics to " << metrics_path
                    << "\n";
        }
      }
      return resid < 1e-8 ? 0 : 1;
    }

    // Host (sequential) solve.
    WallTimer timer;
    const solver::SparseSolver s = solver::SparseSolver::factorize(a, options);
    const double factor_seconds = timer.seconds();
    if (report) {
      solver::ReportOptions ropt;
      ropt.nrhs = nrhs;
      std::cout << "\n" << solver::analysis_report(s, ropt) << "\n";
    }
    std::cout << "\nanalysis/factorization (host):\n"
              << "  nnz(L)          " << s.info().factor_nnz << "\n"
              << "  factor flops    " << s.info().factor_flops << "\n"
              << "  supernodes      " << s.info().num_supernodes << "\n"
              << "  factor time     " << format_fixed(factor_seconds, 3)
              << " s\n";

    timer.reset();
    real_t resid = 0.0;
    std::vector<real_t> x;
    if (refine > 0) {
      x = s.solve_refined(b, nrhs, refine, 1e-15, &resid);
    } else {
      x = s.solve(b, nrhs);
      resid = trisolve::relative_residual(a, x, b, nrhs);
    }
    std::cout << "  solve time      " << format_fixed(timer.seconds(), 4)
              << " s\n"
              << "relative residual: " << resid << "\n";
    if (condest) {
      const auto est = solver::estimate_condition(s);
      std::cout << "condition estimate: cond_1(A) ~ " << est.condition()
                << "  (||A||_1 = " << est.norm_a << ", ||A^-1||_1 >= "
                << est.norm_ainv << ", " << est.solves_used << " solves)\n";
    }
    return resid < 1e-8 ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
