#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON file written by sparts (--trace).

Checks:
  * the file is well-formed JSON with a traceEvents array;
  * every event has the required fields for its phase type;
  * per-track (pid, tid) timestamps are monotone non-decreasing in file
    order (the exporter writes each ring buffer oldest-first);
  * span begin/end events ("B"/"E") are balanced per track, with no "E"
    before its "B" and non-negative span durations;
  * instants carry a scope ("s").

With --summary (default) prints a per-phase table from the host track's
phase-category spans: duration, event counts per category inside the
phase interval.

Exit status: 0 when the trace passes all checks, 1 otherwise.

Usage:
  tools/trace_check.py trace.json
  tools/trace_check.py --quiet trace.json another.json
"""

import argparse
import json
import sys
from collections import defaultdict


def fail(errors, msg):
    errors.append(msg)


def check_trace(path, errors):
    """Validate one trace file; returns the parsed events (or None)."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(errors, f"{path}: cannot parse: {e}")
        return None

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(errors, f"{path}: missing traceEvents array")
        return None
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail(errors, f"{path}: traceEvents is not a list")
        return None

    last_ts = {}       # (pid, tid) -> last timestamp seen
    open_spans = {}    # (pid, tid) -> stack of (name, ts)
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(errors, f"{path}: event {i} is not an object")
            continue
        ph = ev.get("ph")
        if ph is None:
            fail(errors, f"{path}: event {i} has no ph")
            continue
        if ph == "M":
            continue  # metadata carries no timestamp
        name = ev.get("name")
        ts = ev.get("ts")
        if not isinstance(name, str) or not name:
            fail(errors, f"{path}: event {i} has no name")
        if not isinstance(ts, (int, float)):
            fail(errors, f"{path}: event {i} ({name!r}) has no numeric ts")
            continue
        key = (ev.get("pid", 0), ev.get("tid", 0))
        if key in last_ts and ts < last_ts[key] - 1e-9:
            fail(errors,
                 f"{path}: event {i} ({name!r}) ts {ts} goes backwards on "
                 f"track pid={key[0]} tid={key[1]} (prev {last_ts[key]})")
        last_ts[key] = ts

        if ph == "B":
            open_spans.setdefault(key, []).append((name, ts))
        elif ph == "E":
            stack = open_spans.get(key, [])
            if not stack:
                fail(errors,
                     f"{path}: event {i} ({name!r}) ends a span that was "
                     f"never begun on track {key}")
                continue
            bname, bts = stack.pop()
            if ts < bts - 1e-9:
                fail(errors,
                     f"{path}: span {bname!r} on track {key} has negative "
                     f"duration ({bts} -> {ts})")
        elif ph == "i":
            if ev.get("s") not in ("t", "p", "g"):
                fail(errors,
                     f"{path}: instant {i} ({name!r}) has no scope 's'")
        elif ph == "C":
            pass
        else:
            fail(errors, f"{path}: event {i} has unknown ph {ph!r}")

    for key, stack in open_spans.items():
        for name, ts in stack:
            fail(errors,
                 f"{path}: span {name!r} begun at ts {ts} on track {key} "
                 f"was never ended")
    return events


def phase_summary(path, events):
    """Per-phase table from the host track's phase-category spans."""
    # Phase spans live on the host track (thread_name "host/phases").
    phases = []  # (name, begin_ts, end_ts)
    stack = []
    for ev in events:
        if ev.get("ph") == "B" and ev.get("cat") == "phase":
            stack.append((ev["name"], ev["ts"]))
        elif ev.get("ph") == "E" and ev.get("cat") == "phase" and stack:
            name, begin = stack.pop()
            phases.append((name, begin, ev["ts"]))
    if not phases:
        print(f"{path}: no phase spans recorded")
        return

    by_cat = defaultdict(lambda: defaultdict(int))
    for ev in events:
        if ev.get("ph") not in ("B", "i"):
            continue
        ts = ev.get("ts", 0)
        cat = ev.get("cat", "?")
        for name, begin, end in phases:
            if begin - 1e-9 <= ts <= end + 1e-9:
                by_cat[name][cat] += 1

    print(f"{path}: {len(phases)} phase(s)")
    header = f"  {'phase':<16} {'ms':>10}  events by category"
    print(header)
    for name, begin, end in phases:
        cats = by_cat.get(name, {})
        detail = ", ".join(
            f"{c}={n}" for c, n in sorted(cats.items()) if c != "phase")
        print(f"  {name:<16} {(end - begin) / 1000.0:>10.3f}  {detail}")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("traces", nargs="+", help="trace JSON files to check")
    ap.add_argument("--quiet", action="store_true",
                    help="suppress the per-phase summary table")
    args = ap.parse_args()

    errors = []
    for path in args.traces:
        events = check_trace(path, errors)
        if events is not None and not args.quiet:
            phase_summary(path, events)

    if errors:
        for e in errors:
            print(f"FAIL: {e}", file=sys.stderr)
        print(f"{len(errors)} problem(s) found", file=sys.stderr)
        return 1
    print(f"OK: {len(args.traces)} trace(s) passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
